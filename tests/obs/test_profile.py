"""NodeProfile / ClusterProfile: fraction math and table rendering."""

import pytest

from repro.obs.profile import ClusterProfile, NodeProfile
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


def make_profile(**overrides) -> NodeProfile:
    base = dict(
        node_id=0,
        elapsed=10.0,
        executors=1,
        io_seconds=2.0,
        render_seconds=5.0,
        composite_seconds=1.0,
        tasks_executed=40,
        cache_hits=30,
        cache_misses=10,
    )
    base.update(overrides)
    return NodeProfile(**base)


class TestNodeProfile:
    def test_fractions_sum_to_one(self):
        f = make_profile().fractions()
        assert f["io"] == pytest.approx(0.2)
        assert f["render"] == pytest.approx(0.5)
        assert f["composite"] == pytest.approx(0.1)
        assert f["idle"] == pytest.approx(0.2)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_multi_executor_capacity(self):
        p = make_profile(executors=2)
        assert p.pipeline_seconds == 20.0
        f = p.fractions()
        assert f["render"] == pytest.approx(0.25)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_oversubscribed_node_never_negative_idle(self):
        # composite thread overlapping the render pipeline: busy > elapsed
        p = make_profile(io_seconds=4.0, render_seconds=6.0, composite_seconds=5.0)
        f = p.fractions()
        assert f["idle"] == 0.0
        assert all(v >= 0.0 for v in f.values())
        assert sum(f.values()) == pytest.approx(1.0)

    def test_empty_node_is_all_idle(self):
        p = make_profile(
            elapsed=0.0, io_seconds=0.0, render_seconds=0.0,
            composite_seconds=0.0, tasks_executed=0, cache_hits=0, cache_misses=0,
        )
        assert p.fractions() == {
            "io": 0.0, "render": 0.0, "composite": 0.0, "idle": 1.0,
        }

    def test_utilization(self):
        assert make_profile().utilization == pytest.approx(0.8)


class TestClusterProfile:
    def test_from_simulation(self):
        result = run_simulation(scenario_1(scale=0.05), "OURS")
        profile = result.profile
        assert profile is not None
        assert len(profile.nodes) == 8
        for p in profile.nodes:
            assert sum(p.fractions().values()) == pytest.approx(1.0)
        mean = profile.mean_fractions()
        assert sum(mean.values()) == pytest.approx(1.0)

    def test_node_lookup(self):
        result = run_simulation(scenario_1(scale=0.05), "OURS")
        assert result.profile.node(3).node_id == 3

    def test_table_renders_all_nodes(self):
        result = run_simulation(scenario_1(scale=0.05), "FCFS")
        text = result.profile_table(title="scenario 1 / FCFS")
        assert "scenario 1 / FCFS" in text
        lines = text.splitlines()
        assert any("render" in line for line in lines)
        assert any(line.lstrip().startswith("7 ") for line in lines)
        assert lines[-1].lstrip().startswith("mean")

    def test_empty_cluster_profile(self):
        profile = ClusterProfile(elapsed=1.0, nodes=[])
        assert profile.mean_fractions()["idle"] == 1.0
        assert "node" in profile.table()

    def test_result_utilization_helper(self):
        result = run_simulation(scenario_1(scale=0.05), "OURS")
        fractions = result.node_utilization_fractions()
        assert set(fractions) == set(range(8))
        for f in fractions.values():
            assert sum(f.values()) == pytest.approx(1.0)

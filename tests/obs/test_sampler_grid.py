"""Samplers must tick on the exact ``start + k*interval`` grid.

Regression tests for tick drift: rescheduling each tick with
``schedule_after(interval)`` accumulates float rounding error, so after
thousands of ticks samples land off-grid (and two samplers with the same
interval disagree about window boundaries).  The samplers now compute
the k-th tick time from the tick index; these tests pin that with exact
float equality over 10k ticks.
"""

from repro.cluster.event_queue import EventQueue
from repro.obs.counters import TRACK_QUEUE, CounterSampler
from repro.obs.metrics import MetricsRegistry, MetricsSampler
from repro.reporting.timeline import TimelineSampler


class FakeStorage:
    total_bytes = 0
    active_loads = 0
    active_bytes = 0.0


class FakeCluster:
    def __init__(self):
        self.events = EventQueue()
        self.nodes = []
        self.storage = FakeStorage()

    def total_backlog(self):
        return 0


class FakeCollector:
    def __init__(self):
        self.records = []


class FakeScheduler:
    @staticmethod
    def pending_task_count():
        return 0


class FakeService:
    """Always-busy service: ticking continues until the event budget."""

    def __init__(self):
        self.cluster = FakeCluster()
        self.collector = FakeCollector()
        self.scheduler = FakeScheduler()
        self._pending = []
        self.jobs_completed = 0

    def has_work(self):
        return True


class RecordingTracer:
    def __init__(self):
        self.times = []

    def counter(self, pid, track, time, values):
        if track == TRACK_QUEUE:
            self.times.append(time)


TICKS = 10_000
INTERVAL = 0.25


class TestTimelineSamplerGrid:
    def test_10k_ticks_land_exactly_on_grid(self):
        service = FakeService()
        sampler = TimelineSampler(INTERVAL).attach(service)
        service.cluster.events.run(max_events=TICKS + 1)
        assert len(sampler.samples) == TICKS + 1
        for k, sample in enumerate(sampler.samples):
            assert sample.time == k * INTERVAL

    def test_non_representable_interval_does_not_drift(self):
        # 0.1 has no exact binary representation: repeated addition
        # drifts off the multiplicative grid within a few hundred ticks,
        # so this is the discriminating case.
        service = FakeService()
        sampler = TimelineSampler(0.1).attach(service)
        service.cluster.events.run(max_events=TICKS + 1)
        for k, sample in enumerate(sampler.samples):
            assert sample.time == k * 0.1

    def test_grid_is_anchored_at_attach_time(self):
        service = FakeService()
        events = service.cluster.events
        events.schedule(1.0, lambda: None)
        events.run()
        assert events.now == 1.0
        sampler = TimelineSampler(INTERVAL).attach(service)
        events.run(max_events=100)
        for k, sample in enumerate(sampler.samples):
            assert sample.time == 1.0 + k * INTERVAL


class TestMetricsSamplerGrid:
    def test_window_boundaries_on_grid(self):
        service = FakeService()
        registry = MetricsRegistry()
        sampler = MetricsSampler(registry, INTERVAL).attach(service)
        service.cluster.events.run(max_events=TICKS + 1)
        # The t=0 tick closes no window; every later tick closes one.
        assert len(sampler.windows) == TICKS
        for k, window in enumerate(sampler.windows):
            assert window.start == k * INTERVAL
            assert window.end == (k + 1) * INTERVAL


class TestCounterSamplerGrid:
    def test_counter_ticks_on_grid(self):
        service = FakeService()
        tracer = RecordingTracer()
        sampler = CounterSampler(tracer, INTERVAL).attach(service)
        service.cluster.events.run(max_events=TICKS + 1)
        assert sampler.samples_taken == TICKS + 1
        assert len(tracer.times) == TICKS + 1
        for k, time in enumerate(tracer.times):
            assert time == k * INTERVAL

"""Causal critical paths: phase conservation, divergence diff, tables."""

import math

from repro.obs.audit import (
    REASON_CACHE_HIT,
    REASON_ONLY_AVAILABLE,
    REASON_SHED,
    AuditConfig,
    DecisionRecord,
)
from repro.obs.causal import (
    PHASES,
    CriticalPath,
    CriticalPathAnalysis,
    first_divergence,
    phase_delta_table,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario


def rec(user=0, action=0, sequence=0, task=0, node=0, reason=REASON_CACHE_HIT):
    """A minimal DecisionRecord for divergence-matching tests."""
    return DecisionRecord(
        0.0, 0, user, action, sequence, "interactive", task, "ds", 0,
        node, reason, (),
    )


def path(job_type="interactive", arrival=0.0, finish=1.0, cache_hit=True,
         scheduling=0.1, queueing=0.2, io=0.0, render=0.6, composite=0.1):
    return CriticalPath(
        0, 0, 0, job_type, arrival, finish, 0, 0, cache_hit, 4,
        scheduling, queueing, io, render, composite,
    )


class TestCriticalPath:
    def test_latency_and_phase_values(self):
        p = path()
        assert p.latency == 1.0
        values = p.phase_values()
        assert tuple(values) == PHASES
        assert math.isclose(sum(values.values()), p.latency)


class TestAnalysis:
    def test_empty_analysis_is_all_zero(self):
        empty = CriticalPathAnalysis([])
        assert len(empty) == 0
        assert empty.mean_latency == 0.0
        assert empty.cache_hit_fraction == 0.0
        assert set(empty.phase_shares().values()) == {0.0}

    def test_shares_sum_to_one(self):
        analysis = CriticalPathAnalysis([path(), path(io=0.3, render=0.3)])
        assert math.isclose(sum(analysis.phase_shares().values()), 1.0)

    def test_filter_by_job_type(self):
        analysis = CriticalPathAnalysis(
            [path(job_type="interactive"), path(job_type="batch")]
        )
        assert len(analysis.filter("batch")) == 1
        assert len(analysis.filter(None)) == 2

    def test_table_renders(self):
        text = CriticalPathAnalysis([path()]).table(title="OURS")
        assert "OURS" in text
        assert "1 critical paths" in text
        for name in PHASES:
            assert name in text


class TestFirstDivergence:
    def test_identical_streams_agree(self):
        a = [rec(task=0, node=1), rec(task=1, node=2)]
        b = [rec(task=0, node=1), rec(task=1, node=2)]
        assert first_divergence(a, b) is None

    def test_first_mismatch_in_a_order(self):
        a = [rec(task=0, node=1), rec(task=1, node=2)]
        b = [rec(task=1, node=5), rec(task=0, node=1)]  # order differs too
        div = first_divergence(a, b)
        assert div is not None
        assert div.index == 1
        assert div.a.node == 2 and div.b.node == 5

    def test_occurrence_matching_for_redispatched_tasks(self):
        # The same task decided twice (failure redispatch): first
        # occurrences agree, second occurrences differ.
        a = [rec(task=0, node=1), rec(task=0, node=3)]
        b = [rec(task=0, node=1), rec(task=0, node=7)]
        div = first_divergence(a, b)
        assert div is not None
        assert div.index == 1

    def test_shed_records_skipped(self):
        a = [rec(task=-1, node=-1, reason=REASON_SHED), rec(task=0, node=1)]
        b = [rec(task=0, node=1)]
        assert first_divergence(a, b) is None

    def test_unmatched_tasks_skipped(self):
        a = [rec(task=0, node=1), rec(task=9, node=4)]
        b = [rec(task=0, node=1)]  # never decided task 9
        assert first_divergence(a, b) is None


class TestPhaseDeltaTable:
    def test_renders_both_runs_and_all_phases(self):
        a = CriticalPathAnalysis([path(io=0.0, render=0.6)])
        b = CriticalPathAnalysis([path(io=0.4, render=0.2)])
        text = phase_delta_table(a, b, "OURS", "FCFS")
        assert "OURS" in text and "FCFS" in text
        for name in PHASES:
            assert name in text
        assert "pp" in text  # share deltas in percentage points
        assert "latency" in text

    def test_empty_runs_do_not_crash(self):
        text = phase_delta_table(
            CriticalPathAnalysis([]), CriticalPathAnalysis([]), "A", "B"
        )
        assert "io" in text


class TestCollectorOnRealRun:
    """Critical paths built during a real simulation."""

    def run(self, scheduler):
        scenario = make_scenario(2, scale=0.05)
        return run_simulation(
            scenario,
            scheduler,
            RunConfig(audit=AuditConfig(capacity=None), drain=True),
        )

    def test_one_path_per_completed_job(self):
        result = self.run("OURS")
        assert result.critical_paths is not None
        assert len(result.critical_paths) == result.jobs_completed

    def test_phases_conserve_latency(self):
        """The five phases sum exactly to each job's latency."""
        result = self.run("OURS")
        for p in result.critical_paths.paths:
            total = sum(p.phase_values().values())
            assert math.isclose(total, p.latency, rel_tol=0, abs_tol=1e-9)

    def test_phases_are_non_negative(self):
        result = self.run("FCFS")
        for p in result.critical_paths.paths:
            for name, value in p.phase_values().items():
                assert value >= -1e-12, (name, value)

    def test_locality_scheduler_has_cache_hit_bounding_tasks(self):
        result = self.run("OURS")
        analysis = result.critical_paths
        assert analysis.cache_hit_fraction > 0.5
        assert result.audit.reason_counts().get(REASON_CACHE_HIT, 0) > 0

    def test_blind_scheduler_reasons_are_only_available(self):
        result = self.run("FCFS")
        assert set(result.audit.reason_counts()) == {REASON_ONLY_AVAILABLE}

"""Tests for the unified timeline model (repro.obs.timeline)."""

import math

import pytest

from repro.core.chunks import dataset_suite
from repro.faults import FaultPlan, NodeCrash
from repro.obs import (
    AuditConfig,
    SLObjective,
    SLOMonitor,
    TimelineError,
    Tracer,
    extract_timeline,
)
from repro.obs.timeline import LANE_KINDS
from repro.sim.config import system_linux8
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.scenarios import Scenario
from repro.workload.trace import WorkloadTrace


def tiny_scenario(duration=2.0, datasets=2, nodes=4, prewarm=True, prefix="ds"):
    system = system_linux8(node_count=nodes)
    suite = dataset_suite(datasets, 2 * GiB, prefix=prefix)
    trace = persistent_actions(
        suite, duration, target_framerate=100.0 / 3.0, seed=0, name="tiny"
    )
    return Scenario(name="tiny", system=system, trace=trace, prewarm=prewarm)


def traced_config(**kwargs):
    return RunConfig(
        tracer=Tracer(), audit=AuditConfig(capacity=None), **kwargs
    )


class TestExtraction:
    def test_model_joins_every_recorder(self):
        result = run_simulation(tiny_scenario(), "OURS", config=traced_config())
        model = result.timeline()
        assert model.scheduler == "OURS"
        assert model.node_count == 4
        assert model.end >= model.horizon > 0
        # Gantt segments exist for every lane kind and stay in bounds.
        kinds = {seg.kind for seg in model.segments}
        assert kinds == set(LANE_KINDS)
        for seg in model.segments:
            assert 0.0 <= seg.start <= seg.end <= model.end
            assert 0 <= seg.node < model.node_count
        # Prewarmed chunks are resident from t=0.
        assert model.residency
        assert min(r.start for r in model.residency) == 0.0
        assert set(model.datasets) == {"ds00", "ds01"}
        # Pressure tracks ride the counter sampler.
        assert model.counters["busy"].times
        assert model.counters["queued jobs"].times
        # Audit-side joins: reasons and critical paths.
        assert sum(model.reason_counts.values()) > 0
        assert model.paths
        assert model.phase_totals and set(model.phase_totals) == {
            "scheduling", "queueing", "io", "render", "composite",
        }

    def test_timeline_method_matches_extract_function(self):
        result = run_simulation(tiny_scenario(), "OURS", config=traced_config())
        assert result.timeline() == extract_timeline(result)

    def test_path_overlay_boundaries_sum_to_latency(self):
        result = run_simulation(tiny_scenario(), "OURS", config=traced_config())
        for path in result.timeline().paths:
            assert path.arrival <= path.assign <= path.start
            assert path.start <= path.io_done <= path.render_done <= path.finish
            assert math.isclose(
                path.finish - path.arrival, path.latency, rel_tol=1e-9
            )

    def test_slo_windows_overlay(self):
        result = run_simulation(
            tiny_scenario(), "OURS", config=traced_config()
        )
        # An absurdly strict latency SLO violates everywhere.
        reports = SLOMonitor([SLObjective.parse("latency=1e-9")]).evaluate(
            result
        )
        model = result.timeline(slo_reports=reports)
        windows = [w for w in model.windows if w.kind == "slo-violation"]
        assert windows
        for win in windows:
            assert 0.0 <= win.start < win.end <= model.end

    def test_heatmap_bins_bounded(self):
        result = run_simulation(tiny_scenario(), "OURS", config=traced_config())
        model = result.timeline()
        heat = model.heatmap(bins=16)
        assert set(heat) <= set(model.datasets)
        for rows in heat.values():
            for row in rows.values():
                assert len(row) == 16
                assert all(0.0 <= v <= 1.0 for v in row)
        with pytest.raises(ValueError):
            model.heatmap(bins=0)


class TestEdgeCases:
    def test_tracing_disabled_raises_clear_error(self):
        result = run_simulation(tiny_scenario(), "OURS")
        with pytest.raises(TimelineError, match="recorded no trace"):
            result.timeline()

    def test_zero_job_run(self):
        system = system_linux8(node_count=2)
        suite = dataset_suite(1, GiB)
        trace = WorkloadTrace(
            requests=[], datasets=suite, duration=1.0, name="empty"
        )
        scenario = Scenario(
            name="empty", system=system, trace=trace, prewarm=False
        )
        result = run_simulation(scenario, "OURS", config=traced_config())
        model = result.timeline()
        assert model.segments == []
        assert model.residency == []
        assert model.paths == []
        assert model.summary["jobs_submitted"] == 0
        # Counters still ticked; the heatmap is just empty.
        assert model.heatmap() == {}

    def test_crash_orphaned_spans_clipped(self):
        crash_at = 1.0
        plan = FaultPlan(events=(NodeCrash(time=crash_at, node=1),))
        result = run_simulation(
            tiny_scenario(duration=3.0),
            "OURS",
            config=traced_config(faults=plan),
        )
        model = result.timeline()
        open_spans = result.tracer.open_spans()
        # The raw trace may keep orphaned spans; the model never lets
        # node 1's work outlive the crash.
        for seg in model.segments:
            if seg.node == 1:
                assert seg.end <= crash_at
                if seg.end == crash_at and seg.truncated:
                    break
        # Residency on the crashed node ends at the wipe: the cache
        # clear now notifies the observer.
        for res in model.residency:
            if res.node == 1:
                assert res.end <= crash_at
        assert model.markers, "crash onset marker expected"
        assert any(m.kind == "onset" for m in model.markers)
        assert open_spans == [] or all(
            e.pid != 2 for e in open_spans
        ), "clipping must not depend on spans staying open"

    def test_non_ascii_dataset_names_flow_through(self):
        scenario = tiny_scenario(prefix="датасет-")
        result = run_simulation(scenario, "OURS", config=traced_config())
        model = result.timeline()
        assert any(name.startswith("датасет-") for name in model.datasets)
        assert any(
            res.dataset.startswith("датасет-") for res in model.residency
        )


class TestFieldRename:
    def test_timeline_samples_field_still_carries_sampler(self):
        result = run_simulation(
            tiny_scenario(), "OURS", config=RunConfig(timeline_interval=0.5)
        )
        assert result.timeline_samples is not None
        assert result.timeline_samples.samples

"""Live telemetry stream: grid equality, bit-identity, crash safety.

The stream's contract has three load-bearing halves:

* **observer purity** — a streamed run is bit-identical to an
  unstreamed one (golden assignment-trace hashes), because snapshot
  ticks only read simulator state;
* **grid equality** — the streamed counter snapshots are exactly the
  post-hoc :class:`~repro.obs.metrics.MetricsSampler` window series at
  identical grid points (same absolute ``start + k * interval``
  discipline, same window arithmetic);
* **crash safety** — every record is flushed as written, and the
  readers tolerate the one torn trailing line a mid-run crash (or a
  tail racing the writer) can leave.
"""

import json
import pickle
import threading
import time

import pytest

from repro.obs.stream import (
    STREAM_SCHEMA,
    StallWatchdog,
    StreamConfig,
    _StreamWriter,
    default_stream_interval,
    follow_stream,
    iter_jsonl,
    read_stream,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

#: Scenario 1 completes no tasks below this scale (see golden traces).
SMOKE_SCALE = 0.1


def _run(tmp_path, *, stream=True, metrics=False, drain=False, **kwargs):
    scenario = make_scenario(1, scale=SMOKE_SCALE)
    stream_cfg = None
    if stream:
        stream_cfg = StreamConfig(path=tmp_path / "run.ndjson", **kwargs)
    return run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            drain=drain,
            metrics=metrics,
            stream=stream_cfg,
            record_assignments=True,
        ),
    )


class TestStreamConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            StreamConfig(path=tmp_path / "s.ndjson", interval=0.0)
        with pytest.raises(ValueError, match="wall_interval"):
            StreamConfig(path=tmp_path / "s.ndjson", wall_interval=-1.0)
        with pytest.raises(ValueError, match="stall_timeout"):
            StreamConfig(path=tmp_path / "s.ndjson", stall_timeout=0.0)

    def test_for_shard_inserts_suffix(self, tmp_path):
        config = StreamConfig(path=tmp_path / "tele.ndjson", interval=0.5)
        shard = config.for_shard(3)
        assert shard.path.name == "tele.shard3.ndjson"
        assert shard.interval == 0.5

    def test_for_shard_defaults_extension(self, tmp_path):
        config = StreamConfig(path=tmp_path / "tele")
        assert config.for_shard(0).path.name == "tele.shard0.ndjson"

    def test_default_interval_matches_metrics_grid(self):
        from repro.obs.metrics import default_window_interval

        for horizon in (0.5, 6.0, 600.0):
            assert default_stream_interval(horizon) == pytest.approx(
                default_window_interval(horizon)
            )


class TestStreamedRun:
    def test_stream_file_structure(self, tmp_path):
        result = _run(tmp_path)
        records = read_stream(tmp_path / "run.ndjson")
        header = records[0]
        assert header["type"] == "run"
        assert header["schema"] == STREAM_SCHEMA
        assert header["scenario"] == "scenario1"
        assert records[-1]["type"] == "summary"
        snapshots = [r for r in records if r["type"] == "snapshot"]
        assert len(snapshots) == result.stream.snapshots
        # ~64 snapshots from the default grid over the horizon.
        assert 32 <= len(snapshots) <= 80
        assert records[-1]["snapshots"] == len(snapshots)
        assert result.stream.records_written == len(records)

    def test_snapshot_counters_are_live(self, tmp_path):
        """Event counts advance mid-run (the live_count queue path)."""
        result = _run(tmp_path)
        events = [
            r["events"] for r in read_stream(tmp_path / "run.ndjson")
            if r["type"] == "snapshot"
        ]
        assert events == sorted(events)
        assert events[0] > 0, "first window must see a live counter"
        assert events[-1] <= result.events_processed

    def test_streamed_run_is_bit_identical(self, tmp_path):
        streamed = _run(tmp_path)
        unstreamed = _run(tmp_path, stream=False)
        assert streamed.assignment_trace, "trace must not be empty"
        assert (
            streamed.assignment_trace_hash()
            == unstreamed.assignment_trace_hash()
        )

    def test_grid_equality_with_metrics_sampler(self, tmp_path):
        """Streamed snapshots == post-hoc window series, field by field."""
        result = _run(tmp_path, metrics=True)
        windows = result.metrics.windows
        snapshots = [
            r for r in read_stream(tmp_path / "run.ndjson")
            if r["type"] == "snapshot"
        ]
        # The default stream interval matches the metrics sampler's, so
        # the two absolute grids coincide tick for tick.
        assert len(snapshots) == len(windows)
        for snapshot, window in zip(snapshots, windows):
            assert snapshot["t"] == window.end
            assert snapshot["start"] == window.start
            assert snapshot["jobs_completed"] == window.jobs_completed
            assert (
                snapshot["interactive_completed"]
                == window.interactive_completed
            )
            assert snapshot["fps"] == window.fps
            assert snapshot["latency_p50"] == window.latency_p50
            assert snapshot["latency_p95"] == window.latency_p95
            assert snapshot["latency_p99"] == window.latency_p99
            assert snapshot["cache_hits"] == window.cache_hits
            assert snapshot["cache_misses"] == window.cache_misses
            assert snapshot["hit_rate"] == window.hit_rate
            assert snapshot["io_bytes"] == window.io_bytes

    def test_drain_run_streams_past_horizon(self, tmp_path):
        result = _run(tmp_path, drain=True)
        records = read_stream(tmp_path / "run.ndjson")
        assert records[0]["horizon"] is None
        assert records[-1]["type"] == "summary"
        assert result.stream.snapshots > 0

    def test_throughput_accounting(self, tmp_path):
        result = _run(tmp_path, stream=False)
        assert result.events_processed > 0
        assert result.wall_seconds > 0.0
        assert result.events_per_sec == pytest.approx(
            result.events_processed / result.wall_seconds
        )

    def test_result_with_stream_is_picklable(self, tmp_path):
        result = _run(tmp_path)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.stream.snapshots == result.stream.snapshots
        assert clone.stream.path == result.stream.path

    def test_stream_report_anomaly_kinds(self, tmp_path):
        report = _run(tmp_path).stream
        # Fault-free scenario 1 must stay silent (no false alarms).
        assert report.anomalies == []
        assert report.anomaly_kinds() == {}


class TestTornTailReaders:
    def _write(self, path, lines, torn=None):
        with path.open("w") as fh:
            for line in lines:
                fh.write(json.dumps(line) + "\n")
            if torn is not None:
                fh.write(torn)

    def test_iter_jsonl_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "torn.ndjson"
        self._write(path, [{"a": 1}, {"b": 2}], torn='{"c": 3, "tru')
        assert list(iter_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_iter_jsonl_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "rot.ndjson"
        path.write_text('{"a": 1}\n{"bad\n{"b": 2}\n')
        with pytest.raises(json.JSONDecodeError, match="corrupt"):
            list(iter_jsonl(path))

    def test_stream_survives_simulated_crash(self, tmp_path):
        """Truncating the file mid-line models a crash; reads stay clean."""
        _run(tmp_path)
        path = tmp_path / "run.ndjson"
        data = path.read_bytes()
        cut = data[: int(len(data) * 0.6)]
        assert not cut.endswith(b"\n"), "cut must land mid-line"
        crashed = tmp_path / "crashed.ndjson"
        crashed.write_bytes(cut)
        records = read_stream(crashed)
        assert records, "complete records before the tear must survive"
        assert all(isinstance(r, dict) for r in records)

    def test_audit_jsonl_reader_tolerates_torn_tail(self, tmp_path):
        from repro.obs import AuditConfig, read_audit_jsonl

        scenario = make_scenario(1, scale=SMOKE_SCALE)
        audit_path = tmp_path / "audit.jsonl"
        run_simulation(
            scenario,
            "OURS",
            config=RunConfig(audit=AuditConfig(jsonl_path=audit_path)),
        )
        data = audit_path.read_bytes()
        torn = tmp_path / "audit-torn.jsonl"
        torn.write_bytes(data + b'{"type": "decision", "half')
        whole = list(read_audit_jsonl(audit_path))
        assert whole, "audit stream must contain records"
        assert list(read_audit_jsonl(torn)) == whole


class TestFollowStream:
    def test_follow_reads_completed_stream(self, tmp_path):
        _run(tmp_path)
        path = tmp_path / "run.ndjson"
        followed = list(follow_stream(path, poll=0.01, idle_timeout=2.0))
        assert followed == read_stream(path)
        assert followed[-1]["type"] == "summary"

    def test_follow_tails_a_growing_file(self, tmp_path):
        path = tmp_path / "live.ndjson"
        head = [{"type": "run", "schema": 1}, {"type": "snapshot", "t": 1.0}]
        tail = [{"type": "snapshot", "t": 2.0}, {"type": "summary"}]

        def writer():
            with path.open("w") as fh:
                for record in head:
                    fh.write(json.dumps(record) + "\n")
                    fh.flush()
                time.sleep(0.1)
                # Torn write: half a line now, the rest later.
                line = json.dumps(tail[0]) + "\n"
                fh.write(line[:7])
                fh.flush()
                time.sleep(0.1)
                fh.write(line[7:])
                fh.write(json.dumps(tail[1]) + "\n")
                fh.flush()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            records = list(
                follow_stream(path, poll=0.02, idle_timeout=5.0)
            )
        finally:
            thread.join()
        assert records == head + tail

    def test_follow_gives_up_without_summary(self, tmp_path):
        path = tmp_path / "dead.ndjson"
        path.write_text('{"type": "run", "schema": 1}\n')
        start = time.monotonic()
        records = list(follow_stream(path, poll=0.02, idle_timeout=0.2))
        assert records == [{"type": "run", "schema": 1}]
        assert time.monotonic() - start < 5.0

    def test_follow_validation(self, tmp_path):
        with pytest.raises(ValueError, match="poll"):
            list(follow_stream(tmp_path / "x", poll=0.0))


class TestStallWatchdog:
    class _FrozenService:
        outstanding_jobs = 7
        tasks_inflight = 2
        queue_depth = 5

    def test_watchdog_dumps_and_rearms(self, tmp_path):
        from repro.cluster.event_queue import EventQueue

        events = EventQueue()
        events.schedule(10.0, lambda: None)
        writer = _StreamWriter(tmp_path / "stall.ndjson")
        watchdog = StallWatchdog(
            events, self._FrozenService(), writer, timeout=0.05
        )
        watchdog.start()
        try:
            deadline = time.monotonic() + 5.0
            while (
                watchdog.stalls_reported < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        finally:
            watchdog.stop()
            writer.close()
        assert watchdog.stalls_reported >= 2, "watchdog must re-arm"
        stalls = [
            r for r in read_stream(tmp_path / "stall.ndjson")
            if r["type"] == "stall"
        ]
        assert stalls
        first = stalls[0]
        assert first["queue_len"] == 1
        assert first["next_event_time"] == 10.0
        assert first["outstanding"] == 7
        assert first["inflight"] == 2
        assert first["queue_depth"] == 5

    def test_watchdog_quiet_while_progressing(self, tmp_path):
        """A run that keeps draining events never trips the watchdog."""
        result = _run(tmp_path, stall_timeout=30.0)
        assert result.stream.stalls == 0


class TestFederatedStreams:
    def test_shard_stream_files_and_merge(self, tmp_path):
        from repro.federation import FederationConfig, run_federation

        scenario = make_scenario(4, scale=0.02, users=2)
        config = FederationConfig(
            shards=2,
            run=RunConfig(
                stream=StreamConfig(path=tmp_path / "tele.ndjson")
            ),
        )
        result = run_federation(scenario, "OURS", config)
        reports = result.stream_reports()
        assert len(reports) == 2
        for shard, report in enumerate(reports):
            assert report.path.name == f"tele.shard{shard}.ndjson"
            assert report.path.exists()
            assert read_stream(report.path)[-1]["type"] == "summary"
        merged = result.merged_anomalies()
        assert merged == sorted(merged, key=lambda a: a.time)

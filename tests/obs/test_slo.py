"""Unit and integration tests for the SLO monitors."""

from __future__ import annotations

import pytest

from repro.core.job import JobType
from repro.reporting.collectors import JobRecord
from repro.obs.slo import SLObjective, SLOMonitor, SLOReport, slo_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_2


def make_record(action, finish, latency, *, user=0, job_id=0):
    """Interactive job record with the fields the monitor reads."""
    return JobRecord(
        job_id=job_id,
        job_type=JobType.INTERACTIVE,
        dataset="ds",
        user=user,
        action=action,
        sequence=job_id,
        arrival=finish - latency,
        start=finish - latency,
        finish=finish,
        task_count=1,
        cache_hits=1,
        io_seconds=0.0,
        group_size=1,
    )


class FakeCollector:
    def __init__(self, records, action_issues):
        self.records = records
        self.action_issues = action_issues


class FakeResult:
    """The minimal SimulationResult surface the monitor needs."""

    scheduler_name = "TEST"
    scenario_name = "synthetic"

    def __init__(self, records, action_issues, *, horizon=10.0, frame_interval=0.1):
        self.collector = FakeCollector(records, action_issues)
        self.horizon = horizon
        self.frame_interval = frame_interval


def steady_stream(action=0, *, rate=10.0, start=0.0, end=10.0, latency=0.05):
    """Records of an on-target stream completing ``rate`` frames/s."""
    step = 1.0 / rate
    times, t = [], start + step / 2
    while t < end:
        times.append(t)
        t += step
    return [
        make_record(action, finish, latency, job_id=i)
        for i, finish in enumerate(times)
    ]


class TestObjective:
    def test_parse_fps(self):
        obj = SLObjective.parse("fps=33.3")
        assert obj.kind == "fps" and obj.target == pytest.approx(33.3)

    def test_parse_latency_default_quantile(self):
        obj = SLObjective.parse("latency=0.25", window=2.0)
        assert obj.kind == "latency"
        assert obj.quantile == 95.0
        assert obj.window == 2.0
        assert obj.error_budget == pytest.approx(0.05)

    def test_parse_latency_explicit_quantile(self):
        obj = SLObjective.parse("latency:p99=0.5")
        assert obj.quantile == 99.0
        assert obj.target == 0.5

    @pytest.mark.parametrize(
        "spec", ["fps", "fps=abc", "jitter=1", "latency:99=0.5"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SLObjective.parse(spec)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            SLObjective(kind="jitter", target=1.0)
        with pytest.raises(ValueError):
            SLObjective(kind="fps", target=0.0)
        with pytest.raises(ValueError):
            SLObjective(kind="latency", target=1.0, quantile=100.0)

    def test_stride_defaults_to_quarter_window(self):
        assert SLObjective(kind="fps", target=30.0, window=2.0).stride == 0.5

    def test_describe(self):
        assert "fps >= 30" in SLObjective(kind="fps", target=30.0).describe()
        text = SLObjective(kind="latency", target=0.25, quantile=99.0).describe()
        assert "p99 latency <= 0.25s" in text


class TestMonitorFps:
    OBJ = SLObjective(kind="fps", target=10.0, window=1.0)

    def test_on_target_stream_is_compliant(self):
        result = FakeResult(
            steady_stream(rate=10.0), {0: (100, 0.0, 9.9)}
        )
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert report.violations == []
        assert report.compliant_fraction == 1.0
        assert report.worst_burn_rate == 0.0
        assert report.actions_evaluated == 1

    def test_gap_produces_one_merged_violation(self):
        # Frames flow for 3 s, stop for 4 s, then resume: the violating
        # window positions overlap and must merge into ONE window
        # covering the gap.
        records = steady_stream(rate=10.0, start=0.0, end=3.0) + steady_stream(
            rate=10.0, start=7.0, end=10.0
        )
        result = FakeResult(records, {0: (100, 0.0, 9.9)})
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.start < 4.0 < 7.0 < violation.end + 1.0
        assert violation.worst_burn_rate == pytest.approx(1.0)  # empty windows
        assert 0.0 < report.compliant_fraction < 1.0

    def test_silent_action_violates_entire_span(self):
        result = FakeResult([], {0: (100, 0.0, 9.9)})
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert report.actions_violating == 1
        assert report.total_violation_time == pytest.approx(
            report.evaluated_time
        )
        assert report.compliant_fraction == pytest.approx(0.0)

    def test_actions_judged_independently(self):
        records = steady_stream(action=0, rate=10.0) + [
            make_record(1, 5.0, 0.05, user=1, job_id=900)
        ]
        result = FakeResult(records, {0: (100, 0.0, 9.9), 1: (100, 0.0, 9.9)})
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert report.actions_evaluated == 2
        assert report.actions_violating == 1
        assert all(v.action == 1 for v in report.violations)


class TestMonitorLatency:
    OBJ = SLObjective(kind="latency", target=0.25, window=1.0, quantile=95.0)

    def test_fast_stream_is_compliant(self):
        result = FakeResult(
            steady_stream(rate=10.0, latency=0.05), {0: (100, 0.0, 9.9)}
        )
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert report.violations == []

    def test_slow_stream_violates_with_burn_rate(self):
        result = FakeResult(
            steady_stream(rate=10.0, latency=0.5), {0: (100, 0.0, 9.9)}
        )
        report = SLOMonitor([self.OBJ]).evaluate(result)[0]
        assert report.violations
        # Every completion is over the bound: fraction_over / budget.
        assert report.worst_burn_rate == pytest.approx(1.0 / 0.05)

    def test_budget_tolerates_rare_outliers(self):
        # One slow frame in a hundred stays inside a p95 error budget —
        # the window must be wide enough that 1 frame < 5% of it.
        objective = SLObjective(
            kind="latency", target=0.25, window=10.0, quantile=95.0
        )
        records = steady_stream(rate=10.0, latency=0.05)
        records[50] = make_record(0, records[50].finish, 0.9, job_id=50)
        result = FakeResult(records, {0: (100, 0.0, 9.9)})
        report = SLOMonitor([objective]).evaluate(result)[0]
        assert report.violations == []


class TestReportAndTable:
    def test_monitor_requires_objectives(self):
        with pytest.raises(ValueError):
            SLOMonitor([])

    def test_empty_report_properties(self):
        report = SLOReport(
            objective=SLObjective(kind="fps", target=30.0),
            scheduler="OURS",
            scenario="s",
        )
        assert report.compliant_fraction == 1.0
        assert report.worst_burn_rate == 0.0
        assert report.actions_violating == 0

    def test_jsonl_events_shape(self):
        result = FakeResult([], {0: (100, 0.0, 9.9)})
        obj = SLObjective(kind="fps", target=10.0)
        report = SLOMonitor([obj]).evaluate(result)[0]
        events = report.jsonl_events()
        assert events[-1]["type"] == "slo_report"
        assert events[-1]["total_violation_time"] > 0
        assert all(e["type"] == "slo_violation" for e in events[:-1])

    def test_table_lists_one_row_per_scheduler(self):
        obj = SLObjective(kind="fps", target=10.0)
        reports = []
        for name in ("OURS", "FCFS"):
            result = FakeResult([], {0: (100, 0.0, 9.9)})
            result.scheduler_name = name
            reports.append(SLOMonitor([obj]).evaluate(result)[0])
        text = slo_table(reports, title="SLO report")
        assert "SLO report" in text
        assert "OURS" in text and "FCFS" in text
        assert "fps >= 10" in text


class TestScenario2Story:
    """The paper's Fig. 5 story in SLO form (acceptance criterion)."""

    def test_ours_accumulates_less_fps_violation_than_fcfs(self):
        scenario = scenario_2(scale=0.1)
        objective = SLObjective(kind="fps", target=100.0 / 3.0, window=1.0)
        monitor = SLOMonitor([objective])
        violation = {}
        for name in ("OURS", "FCFSL", "FCFSU"):
            result = run_simulation(scenario, name)
            violation[name] = monitor.evaluate(result)[0].total_violation_time
        assert violation["OURS"] < violation["FCFSL"]
        assert violation["OURS"] < violation["FCFSU"]

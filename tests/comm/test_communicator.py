"""Tests for the simulated communicator."""

import numpy as np
import pytest

from repro.comm.communicator import (
    CommunicatorError,
    SimCommunicator,
    payload_nbytes,
)


class TestPayloadSize:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_nested(self):
        assert payload_nbytes([np.zeros(2, np.float64), b"xy"]) == 18

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_scalar_envelope(self):
        assert payload_nbytes(42) == 64


class TestPointToPoint:
    def test_send_recv(self):
        comm = SimCommunicator(4)
        comm.send(0, 1, "hello")
        assert comm.recv(1, 0) == "hello"

    def test_fifo_per_channel(self):
        comm = SimCommunicator(2)
        comm.send(0, 1, "a")
        comm.send(0, 1, "b")
        assert comm.recv(1, 0) == "a"
        assert comm.recv(1, 0) == "b"

    def test_tags_separate_channels(self):
        comm = SimCommunicator(2)
        comm.send(0, 1, "t1", tag=1)
        comm.send(0, 1, "t2", tag=2)
        assert comm.recv(1, 0, tag=2) == "t2"
        assert comm.recv(1, 0, tag=1) == "t1"

    def test_missing_message_raises(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError, match="no message"):
            comm.recv(1, 0)

    def test_self_send_rejected(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError):
            comm.send(1, 1, "x")

    def test_rank_bounds(self):
        comm = SimCommunicator(2)
        with pytest.raises(CommunicatorError):
            comm.send(0, 2, "x")
        with pytest.raises(CommunicatorError):
            comm.recv(-1, 0)

    def test_traffic_accounting(self):
        comm = SimCommunicator(2)
        comm.send(0, 1, np.zeros(100, dtype=np.uint8))
        assert comm.interconnect.messages == 1
        assert comm.interconnect.bytes_sent == 100


class TestCollectives:
    def test_bcast(self):
        comm = SimCommunicator(3)
        comm.bcast(0, "payload")
        assert comm.recv(1, 0) == "payload"
        assert comm.recv(2, 0) == "payload"

    def test_gather(self):
        comm = SimCommunicator(3)
        comm.send(1, 0, "one")
        comm.send(2, 0, "two")
        assert comm.gather(0) == [None, "one", "two"]


class TestStages:
    def test_elapsed_is_max_over_ranks(self):
        comm = SimCommunicator(3)
        comm.begin_stage()
        comm.send(0, 1, np.zeros(1000, np.uint8))
        comm.send(0, 2, np.zeros(1000, np.uint8))
        comm.send(1, 2, np.zeros(1000, np.uint8))  # rank 2 receives twice
        comm.end_stage()
        spec = comm.interconnect.spec
        expected = 2 * spec.transfer_time(1000)
        assert comm.elapsed == pytest.approx(expected)
        assert comm.stages == 1

    def test_nested_stage_rejected(self):
        comm = SimCommunicator(2)
        comm.begin_stage()
        with pytest.raises(CommunicatorError):
            comm.begin_stage()

    def test_end_without_begin_rejected(self):
        with pytest.raises(CommunicatorError):
            SimCommunicator(2).end_stage()


class TestDrainChecks:
    def test_assert_drained(self):
        comm = SimCommunicator(2)
        comm.send(0, 1, "x")
        with pytest.raises(CommunicatorError, match="undrained"):
            comm.assert_drained()
        comm.recv(1, 0)
        comm.assert_drained()

    def test_pending_count(self):
        comm = SimCommunicator(2)
        assert comm.pending_messages() == 0
        comm.send(0, 1, "x")
        assert comm.pending_messages() == 1

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.cluster.storage import StorageSpec
from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob, reset_job_ids
from repro.core.scheduler_base import SchedulerContext
from repro.core.tables import SchedulerTables
from repro.util.units import GiB, MiB


@pytest.fixture(autouse=True)
def _fresh_job_ids():
    """Keep job ids deterministic per test."""
    reset_job_ids()
    yield


# ---------------------------------------------------------------------------
# Small-cluster harness for direct scheduler testing
# ---------------------------------------------------------------------------


class MiniHarness:
    """A small cluster + tables + context for unit-testing schedulers.

    Defaults: 4 nodes, 1 GiB memory quota, 256 MiB chunks, deterministic
    cost model without render jitter (so predictions are exact).
    """

    def __init__(
        self,
        node_count: int = 4,
        memory_quota: int = 1 * GiB,
        chunk_max: int = 256 * MiB,
        cost: Optional[CostParameters] = None,
    ) -> None:
        self.cost = cost if cost is not None else CostParameters(render_jitter=0.0)
        self.cluster = Cluster(
            node_count,
            memory_quota,
            self.cost,
            storage_spec=StorageSpec(bandwidth=100 * MiB, latency=0.01),
        )
        self.chunk_max = chunk_max
        self.decomposition = ChunkedDecomposition(chunk_max)
        self.tables = SchedulerTables(
            node_count, memory_quota, self.cost, self.cluster.storage
        )
        self.ctx = SchedulerContext(self.cluster, self.tables, self.decomposition)

    def job(
        self,
        dataset: Dataset,
        *,
        job_type: JobType = JobType.INTERACTIVE,
        arrival: Optional[float] = None,
        user: int = 0,
        action: int = 0,
        sequence: int = 0,
    ) -> RenderJob:
        """Create a job arriving now (or at ``arrival``)."""
        t = self.cluster.now if arrival is None else arrival
        return RenderJob(
            job_type, dataset, t, user=user, action=action, sequence=sequence
        )

    def advance(self, dt: float) -> None:
        """Advance simulated time without events."""
        self.cluster.events.run(until=self.cluster.now + dt)


@pytest.fixture
def harness() -> MiniHarness:
    return MiniHarness()


@pytest.fixture
def dataset_1g() -> Dataset:
    """A 1 GiB dataset → 4 chunks of 256 MiB under the harness policy."""
    return Dataset("ds-a", 1 * GiB)


@pytest.fixture
def dataset_1g_b() -> Dataset:
    return Dataset("ds-b", 1 * GiB)


def assignments_by_chunk(assignments) -> dict:
    """Group a list of Assignments by chunk key."""
    by_chunk: dict = {}
    for a in assignments:
        by_chunk.setdefault(a.task.chunk.key, []).append(a.node)
    return by_chunk

"""Tests for the scheduler interface and shared greedy helpers."""

import pytest

from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType
from repro.core.scheduler_base import (
    Scheduler,
    Trigger,
    greedy_locality_aware,
    greedy_min_available,
)
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness


class TestSchedulerContext:
    def test_decompose_uses_policy(self, harness, dataset_1g):
        job = harness.job(dataset_1g)
        tasks = harness.ctx.decompose(job)
        assert len(tasks) == 4
        assert isinstance(harness.ctx.decomposition, ChunkedDecomposition)

    def test_assign_bounds_checked(self, harness, dataset_1g):
        job = harness.job(dataset_1g)
        (task, *_rest) = harness.ctx.decompose(job)
        with pytest.raises(ValueError, match="out of range"):
            harness.ctx.assign(task, 99)

    def test_take_assignments_clears(self, harness, dataset_1g):
        job = harness.job(dataset_1g)
        tasks = harness.ctx.decompose(job)
        harness.ctx.assign(tasks[0], 0)
        first = harness.ctx.take_assignments()
        assert len(first) == 1
        assert harness.ctx.take_assignments() == []

    def test_context_properties(self, harness):
        assert harness.ctx.node_count == 4
        assert harness.ctx.now == 0.0
        assert harness.ctx.cost is harness.cost


class TestGreedyHelpers:
    def test_min_available_picks_least_loaded(self, harness, dataset_1g):
        harness.tables.available[0] = 5.0
        harness.tables.heap.update(0)
        job = harness.job(dataset_1g)
        task = harness.ctx.decompose(job)[0]
        assert greedy_min_available(task, harness.ctx) != 0

    def test_locality_aware_prefers_cache(self, harness, dataset_1g):
        job = harness.job(dataset_1g)
        task = harness.ctx.decompose(job)[0]
        harness.tables.warm(task.chunk, 3)
        assert greedy_locality_aware(task, harness.ctx) == 3

    def test_locality_aware_falls_back_when_uncached(self, harness, dataset_1g):
        job = harness.job(dataset_1g)
        task = harness.ctx.decompose(job)[0]
        node = greedy_locality_aware(task, harness.ctx)
        assert node == harness.tables.min_available_node()


class TestDefaultReschedule:
    def test_reschedule_places_all_orphans_locality_first(
        self, harness, dataset_1g
    ):
        class Dummy(Scheduler):
            """Minimal policy for exercising the base reschedule."""

            name = "DUMMY"
            trigger = Trigger.IMMEDIATE

            def schedule(self, jobs, ctx):
                """Assign everything to node 0 (placement irrelevant)."""
                for job in jobs:
                    for task in ctx.decompose(job):
                        ctx.assign(task, 0)

        sched = Dummy()
        job = harness.job(dataset_1g)
        tasks = harness.ctx.decompose(job)
        harness.tables.warm(tasks[0].chunk, 2)
        sched.reschedule(tasks, harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert len(assignments) == 4
        by_task = {a.task: a.node for a in assignments}
        assert by_task[tasks[0]] == 2  # surviving replica preferred

    def test_defaults(self):
        class Minimal(Scheduler):
            """Minimal concrete scheduler."""

            def schedule(self, jobs, ctx):
                """No-op placement."""

        sched = Minimal()
        assert sched.pending_task_count() == 0
        sched.reset()  # no-op, must not raise
        policy = sched.make_decomposition(4, 256 * MiB)
        assert isinstance(policy, ChunkedDecomposition)

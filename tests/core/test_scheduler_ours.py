"""Tests for OURS — the paper's Algorithm 1."""

import pytest

from repro.core.chunks import Dataset
from repro.core.job import JobType
from repro.core.ours import OursScheduler
from repro.core.scheduler_base import Trigger
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness, assignments_by_chunk


@pytest.fixture
def ours() -> OursScheduler:
    return OursScheduler(cycle=0.015)


class TestBasics:
    def test_trigger_cycle(self):
        assert OursScheduler.trigger is Trigger.CYCLE

    def test_validation(self):
        with pytest.raises(ValueError):
            OursScheduler(cycle=0)

    def test_empty_cycle_noop(self, ours, harness):
        ours.schedule([], harness.ctx)
        assert harness.ctx.take_assignments() == []


class TestInteractiveHeuristics:
    def test_same_chunk_same_cycle_same_node(self, ours, harness, dataset_1g):
        """Heuristic 3: interactive tasks over the same chunk within a
        cycle all land on one rendering node."""
        jobs = [harness.job(dataset_1g, action=i) for i in range(3)]
        ours.schedule(jobs, harness.ctx)
        by_chunk = assignments_by_chunk(harness.ctx.take_assignments())
        assert len(by_chunk) == 4
        for nodes in by_chunk.values():
            assert len(nodes) == 3
            assert len(set(nodes)) == 1

    def test_interactive_scheduled_immediately(self, ours, harness, dataset_1g):
        job = harness.job(dataset_1g)
        ours.schedule([job], harness.ctx)
        assert len(harness.ctx.take_assignments()) == 4
        assert ours.pending_task_count() == 0

    def test_cached_chunk_goes_to_cached_node(self, ours, harness, dataset_1g):
        chunks = harness.decomposition.decompose(dataset_1g)
        harness.tables.warm(chunks[0], 3)
        job = harness.job(dataset_1g)
        ours.schedule([job], harness.ctx)
        by_chunk = assignments_by_chunk(harness.ctx.take_assignments())
        assert by_chunk[chunks[0].key] == [3]

    def test_load_spreads_to_other_nodes_when_cached_node_backed_up(
        self, ours, harness
    ):
        """§V-A: following cycles may pick other nodes to distribute the
        workload once the caching node is saturated."""
        ds = Dataset("hot", 256 * MiB)
        chunk = harness.decomposition.decompose(ds)[0]
        harness.tables.warm(chunk, 0)
        io = harness.tables.io_estimate(chunk)
        harness.tables.available[0] += 2 * io
        harness.tables.heap.update(0)
        job = harness.job(ds)
        ours.schedule([job], harness.ctx)
        (a,) = harness.ctx.take_assignments()
        assert a.node != 0

    def test_noncached_longest_estimate_first(self, ours, harness):
        """Non-cached interactive chunks are ordered by Estimate (LPT)."""
        big = Dataset("big", 1 * GiB)  # 4 chunks of 256 MiB
        small = Dataset("small", 128 * MiB)  # 1 chunk of 128 MiB
        j_small = harness.job(small, action=0)
        j_big = harness.job(big, action=1)
        ours.schedule([j_small, j_big], harness.ctx)
        assignments = harness.ctx.take_assignments()
        # The 256 MiB chunks (larger estimate) precede the 128 MiB one.
        sizes = [a.task.chunk.size for a in assignments]
        assert sizes.index(128 * MiB) == len(sizes) - 1


class TestBatchDeferral:
    def test_batch_deferred_when_nodes_busy(self, ours, harness, dataset_1g):
        """Heuristic 2: batch jobs are held until nodes become available."""
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = 100.0  # booked far past λ
            harness.tables.heap.update(k)
        job = harness.job(dataset_1g, job_type=JobType.BATCH)
        ours.schedule([job], harness.ctx)
        assert harness.ctx.take_assignments() == []
        assert ours.pending_task_count() == 4

    def test_deferred_batch_runs_on_later_cycle(self, ours, harness, dataset_1g):
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = 100.0
            harness.tables.heap.update(k)
        job = harness.job(dataset_1g, job_type=JobType.BATCH)
        ours.schedule([job], harness.ctx)
        harness.ctx.take_assignments()
        # Nodes drain; a later (empty) cycle picks the backlog up — the
        # nodes never served interactive work, so ε is satisfied.
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = 0.0
            harness.tables.heap.update(k)
        ours.schedule([], harness.ctx)
        assert len(harness.ctx.take_assignments()) == 4
        assert ours.pending_task_count() == 0

    def test_cached_batch_fills_node_until_lambda(self, ours, harness):
        """Algorithm 1 lines 16-22: cached batch tasks fill a node only
        until its predicted available time crosses the next cycle."""
        ds = Dataset("anim", 256 * MiB)
        chunk = harness.decomposition.decompose(ds)[0]
        harness.tables.warm(chunk, 1)
        # Other nodes recently served interactive work, so the cold-
        # batch phase (ε test) cannot place overflow copies there.
        now = harness.cluster.now
        for k in (0, 2, 3):
            harness.tables.last_interactive_assign[k] = now
        jobs = [
            harness.job(ds, job_type=JobType.BATCH, action=i, sequence=i)
            for i in range(100)
        ]
        ours.schedule(jobs, harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert 0 < len(assignments) < 100
        assert all(a.node == 1 for a in assignments)
        # Exactly enough renders to book node 1 past λ = 15 ms.
        render = harness.cost.render_time(chunk.size, 1)
        import math

        assert len(assignments) == math.ceil(ours.cycle / render)
        assert ours.pending_task_count() == 100 - len(assignments)

    def test_cold_batch_respects_interactive_idle_threshold(
        self, ours, harness, dataset_1g
    ):
        """Heuristic 4 / ε: a node that served interactive work recently
        does not start a cold batch load."""
        interactive = harness.job(dataset_1g)
        ours.schedule([interactive], harness.ctx)
        harness.ctx.take_assignments()
        # All four nodes just served interactive tasks at t=0.  Nodes
        # drain instantly in the tables for the sake of the test:
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = 0.0
            harness.tables.heap.update(k)
        cold = harness.job(
            Dataset("cold", 256 * MiB), job_type=JobType.BATCH
        )
        ours.schedule([cold], harness.ctx)
        assert harness.ctx.take_assignments() == []
        assert ours.pending_task_count() == 1

    def test_cold_batch_runs_after_idle_period(self, ours, harness, dataset_1g):
        interactive = harness.job(dataset_1g)
        ours.schedule([interactive], harness.ctx)
        harness.ctx.take_assignments()
        cold = harness.job(Dataset("cold", 256 * MiB), job_type=JobType.BATCH)
        ours.schedule([cold], harness.ctx)
        harness.ctx.take_assignments()
        assert ours.pending_task_count() == 1
        # Simulate a long interactive lull: ε = Estimate/2 ≈ 1.3 s.
        harness.advance(10.0)
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = harness.cluster.now
            harness.tables.heap.update(k)
        ours.schedule([], harness.ctx)
        assert len(harness.ctx.take_assignments()) == 1
        assert ours.pending_task_count() == 0

    def test_noncached_batch_fewest_replicas_first(self, ours, harness):
        """Backlog chunks with no replicas anywhere are placed before
        chunks already cached on (saturated) nodes."""
        replicated = Dataset("replicated", 256 * MiB)
        fresh = Dataset("fresh", 256 * MiB)
        chunk_r = harness.decomposition.decompose(replicated)[0]
        harness.tables.warm(chunk_r, 0)
        # Node 0 saturated so the cached-batch phase cannot take it.
        harness.tables.available[0] = 100.0
        harness.tables.heap.update(0)
        j_r = harness.job(replicated, job_type=JobType.BATCH, action=0)
        j_f = harness.job(fresh, job_type=JobType.BATCH, action=1)
        ours.schedule([j_r, j_f], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert assignments, "idle nodes should take cold batch work"
        assert assignments[0].task.job is j_f

    def test_interactive_priority_over_batch(self, ours, harness, dataset_1g):
        """Interactive tasks of a cycle are all placed before any batch
        task of the same cycle."""
        batch = harness.job(dataset_1g, job_type=JobType.BATCH, action=0)
        live = harness.job(dataset_1g, action=1)
        ours.schedule([batch, live], harness.ctx)
        assignments = harness.ctx.take_assignments()
        kinds = [a.task.job.job_type for a in assignments]
        first_batch = kinds.index(JobType.BATCH) if JobType.BATCH in kinds else len(kinds)
        assert all(k is JobType.INTERACTIVE for k in kinds[:first_batch])
        assert all(k is JobType.BATCH for k in kinds[first_batch:])

    def test_reset_clears_backlog(self, ours, harness, dataset_1g):
        for k in range(harness.cluster.node_count):
            harness.tables.available[k] = 100.0
            harness.tables.heap.update(k)
        ours.schedule(
            [harness.job(dataset_1g, job_type=JobType.BATCH)], harness.ctx
        )
        harness.ctx.take_assignments()
        assert ours.pending_task_count() == 4
        ours.reset()
        assert ours.pending_task_count() == 0

"""Tests for the FCFS scheduler family."""

import pytest

from repro.core.chunks import Dataset, UniformDecomposition
from repro.core.fcfs import FCFSLScheduler, FCFSScheduler, FCFSUScheduler
from repro.core.job import JobType
from repro.core.scheduler_base import Trigger
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness, assignments_by_chunk


class TestFCFS:
    def test_trigger_immediate(self):
        assert FCFSScheduler.trigger is Trigger.IMMEDIATE

    def test_all_tasks_assigned_exactly_once(self, harness, dataset_1g):
        sched = FCFSScheduler()
        job = harness.job(dataset_1g)
        sched.schedule([job], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert len(assignments) == 4
        assert {a.task for a in assignments} == set(job.tasks)

    def test_spreads_by_available_time(self, harness, dataset_1g):
        """4 equal tasks on 4 idle nodes → one per node."""
        sched = FCFSScheduler()
        job = harness.job(dataset_1g)
        sched.schedule([job], harness.ctx)
        nodes = sorted(a.node for a in harness.ctx.take_assignments())
        assert nodes == [0, 1, 2, 3]

    def test_ignores_locality(self, harness, dataset_1g):
        """A cached chunk on a loaded node is NOT preferred."""
        sched = FCFSScheduler()
        j1 = harness.job(dataset_1g)
        sched.schedule([j1], harness.ctx)
        harness.ctx.take_assignments()
        # All nodes now equally booked with one cold task each; chunk 0
        # cached (predicted) on node 0.  A new job over the same data is
        # again spread by available time only — chunk 0 goes to node 0
        # only if it happens to be the min-available node.
        j2 = harness.job(dataset_1g)
        sched.schedule([j2], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert len(assignments) == 4  # greedy always assigns

    def test_arrival_order_respected(self, harness):
        """Jobs scheduled in list order (first come, first served)."""
        ds_small = Dataset("small", 256 * MiB)  # 1 task
        sched = FCFSScheduler()
        jobs = [harness.job(ds_small, action=i) for i in range(4)]
        sched.schedule(jobs, harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert [a.task.job.action for a in assignments] == [0, 1, 2, 3]


class TestFCFSL:
    def test_prefers_cached_node(self, harness, dataset_1g):
        sched = FCFSLScheduler()
        j1 = harness.job(dataset_1g)
        sched.schedule([j1], harness.ctx)
        first = assignments_by_chunk(harness.ctx.take_assignments())
        j2 = harness.job(dataset_1g)
        sched.schedule([j2], harness.ctx)
        second = assignments_by_chunk(harness.ctx.take_assignments())
        # Every chunk returns to the node that cached it.
        assert first == second

    def test_spills_when_cached_node_overloaded(self, harness, dataset_1g):
        """If the caching node's backlog exceeds the I/O cost, the task
        goes elsewhere (the dynamic-balance property of §V-A)."""
        sched = FCFSLScheduler()
        ds_small = Dataset("small", 256 * MiB)
        j1 = harness.job(ds_small)
        sched.schedule([j1], harness.ctx)
        (a1,) = harness.ctx.take_assignments()
        cached_node = a1.node
        # Pile far more than one I/O worth of predicted work onto it.
        io = harness.tables.io_estimate(j1.tasks[0].chunk)
        harness.tables.available[cached_node] += 3 * io
        harness.tables.heap.update(cached_node)
        j2 = harness.job(ds_small)
        sched.schedule([j2], harness.ctx)
        (a2,) = harness.ctx.take_assignments()
        assert a2.node != cached_node

    def test_sticks_with_cached_node_under_small_backlog(
        self, harness, dataset_1g
    ):
        sched = FCFSLScheduler()
        ds_small = Dataset("small", 256 * MiB)
        j1 = harness.job(ds_small)
        sched.schedule([j1], harness.ctx)
        (a1,) = harness.ctx.take_assignments()
        # Node drained but re-booked with a backlog smaller than the
        # I/O cost → staying put is cheaper than a cold load elsewhere.
        harness.tables.available[a1.node] = 0.2
        harness.tables.heap.update(a1.node)
        j2 = harness.job(ds_small)
        sched.schedule([j2], harness.ctx)
        (a2,) = harness.ctx.take_assignments()
        assert a2.node == a1.node


class TestFCFSU:
    def test_uniform_decomposition(self):
        sched = FCFSUScheduler()
        policy = sched.make_decomposition(node_count=4, chunk_max=256 * MiB)
        assert isinstance(policy, UniformDecomposition)
        assert policy.node_count == 4

    def test_chunk_pinned_to_node(self, dataset_1g):
        harness = MiniHarness()
        sched = FCFSUScheduler()
        harness_ctx = harness.ctx
        # Swap in the uniform policy as the service would.
        harness_ctx.decomposition = sched.make_decomposition(4, 256 * MiB)
        job = harness.job(dataset_1g)
        sched.schedule([job], harness_ctx)
        assignments = harness_ctx.take_assignments()
        assert len(assignments) == 4
        for a in assignments:
            assert a.node == a.task.chunk.index

    def test_wrong_task_count_rejected(self, harness):
        """FCFSU with the chunked policy (wrong wiring) fails loudly."""
        sched = FCFSUScheduler()
        # Chunked policy yields 2 tasks for 512 MiB — not one per node.
        job = harness.job(Dataset("half", 512 * MiB))
        with pytest.raises(ValueError, match="one task per node"):
            sched.schedule([job], harness.ctx)

"""Tests for the head node's three scheduling tables (§V-A/V-B)."""

import pytest

from repro.core.chunks import Chunk, Dataset
from repro.core.job import JobType
from repro.core.tables import NodeAvailabilityHeap
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness


def chunk(i: int, size=256 * MiB, ds="ds") -> Chunk:
    return Chunk(ds, i, size)


class TestAvailabilityHeap:
    def test_min_node_initial_tie(self):
        heap = NodeAvailabilityHeap([0.0, 0.0, 0.0])
        assert heap.min_node() == 0

    def test_updates_tracked(self):
        avail = [0.0, 0.0, 0.0]
        heap = NodeAvailabilityHeap(avail)
        avail[0] = 5.0
        heap.update(0)
        assert heap.min_node() == 1

    def test_decrease_tracked(self):
        avail = [5.0, 3.0, 4.0]
        heap = NodeAvailabilityHeap(avail)
        avail[0] = 1.0
        heap.update(0)
        assert heap.min_node() == 0

    def test_min_excluding(self):
        avail = [1.0, 2.0, 3.0]
        heap = NodeAvailabilityHeap(avail)
        assert heap.min_node_excluding({0}) == 1
        assert heap.min_node_excluding({0, 1}) == 2
        assert heap.min_node_excluding({0, 1, 2}) is None
        # Non-destructive: the excluded minimum is still found afterwards.
        assert heap.min_node() == 0


class TestEstimateTable:
    def test_initialized_from_storage(self, harness: MiniHarness):
        c = chunk(0)
        expected = harness.cluster.storage.estimate_load_time(c.size)
        assert harness.tables.io_estimate(c) == pytest.approx(expected)

    def test_estimate_includes_render(self, harness: MiniHarness):
        c = chunk(0)
        est = harness.tables.estimate(c, group_size=4)
        io = harness.tables.io_estimate(c)
        assert est == pytest.approx(io + harness.cost.render_time(c.size, 4))

    def test_exec_estimate_drops_io_when_cached(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        tasks = harness.ctx.decompose(job)
        c = tasks[0].chunk
        cold = harness.tables.exec_estimate(c, 0, 4)
        harness.tables.warm(c, 0)
        warm = harness.tables.exec_estimate(c, 0, 4)
        assert warm == pytest.approx(harness.cost.render_time(c.size, 4))
        assert cold == pytest.approx(warm + harness.tables.io_estimate(c))


class TestCacheTable:
    def test_warm_updates_replicas(self, harness: MiniHarness):
        c = chunk(0)
        harness.tables.warm(c, 2)
        assert harness.tables.is_cached(c, 2)
        assert harness.tables.cached_nodes(c) == {2}
        assert harness.tables.replica_count(c) == 1
        harness.tables.check_invariants()

    def test_replicas_across_nodes(self, harness: MiniHarness):
        c = chunk(0)
        harness.tables.warm(c, 0)
        harness.tables.warm(c, 3)
        assert harness.tables.cached_nodes(c) == {0, 3}

    def test_mirror_eviction_updates_reverse_index(self):
        # Quota of exactly 2 chunks.
        h = MiniHarness(memory_quota=512 * MiB)
        a, b, c = chunk(0), chunk(1), chunk(2)
        h.tables.warm(a, 0)
        h.tables.warm(b, 0)
        h.tables.warm(c, 0)  # evicts a
        assert not h.tables.is_cached(a, 0)
        assert h.tables.replica_count(a) == 0
        assert h.tables.cached_nodes(c) == {0}
        h.tables.check_invariants()


class TestAssignmentAccounting:
    def test_assignment_updates_all_tables(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        tasks = harness.ctx.decompose(job)
        est = harness.tables.record_assignment(tasks[0], 1, now=0.0)
        # Cold assignment: estimate includes I/O.
        assert est == pytest.approx(harness.tables.estimate(tasks[0].chunk, 4))
        assert harness.tables.available[1] == pytest.approx(est)
        assert harness.tables.is_cached(tasks[0].chunk, 1)
        assert harness.tables.last_interactive_assign[1] == 0.0

    def test_batch_assignment_does_not_touch_interactive_clock(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g, job_type=JobType.BATCH)
        tasks = harness.ctx.decompose(job)
        harness.tables.record_assignment(tasks[0], 1, now=5.0)
        assert harness.tables.last_interactive_assign[1] == -float("inf")

    def test_second_assignment_predicted_warm(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        j1 = harness.job(dataset_1g)
        j2 = harness.job(dataset_1g)
        t1 = harness.ctx.decompose(j1)[0]
        t2 = harness.ctx.decompose(j2)[0]
        est1 = harness.tables.record_assignment(t1, 0, now=0.0)
        est2 = harness.tables.record_assignment(t2, 0, now=0.0)
        assert est2 < est1  # second is predicted a cache hit
        assert harness.tables.available[0] == pytest.approx(est1 + est2)

    def test_available_floors_at_now(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        t = harness.ctx.decompose(job)[0]
        harness.tables.record_assignment(t, 0, now=100.0)
        assert harness.tables.available[0] >= 100.0


class TestCompletionCorrection:
    def test_idle_node_resets_to_now(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        t = harness.ctx.decompose(job)[0]
        harness.tables.record_assignment(t, 0, now=0.0)
        t.start_time, t.finish_time = 0.0, 2.5
        t.cache_hit, t.io_time = False, 2.49
        harness.tables.correct_completion(t, 0, now=2.5)
        assert harness.tables.available[0] == pytest.approx(2.5)

    def test_estimate_learns_measured_io(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        t = harness.ctx.decompose(job)[0]
        harness.tables.record_assignment(t, 0, now=0.0)
        t.start_time, t.finish_time = 0.0, 9.0
        t.cache_hit, t.io_time = False, 8.99
        harness.tables.correct_completion(t, 0, now=9.0)
        assert harness.tables.io_estimate(t.chunk) == pytest.approx(8.99)

    def test_hit_does_not_overwrite_estimate(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        job = harness.job(dataset_1g)
        t = harness.ctx.decompose(job)[0]
        before = harness.tables.io_estimate(t.chunk)
        harness.tables.record_assignment(t, 0, now=0.0)
        t.start_time, t.finish_time = 0.0, 0.01
        t.cache_hit, t.io_time = True, 0.0
        harness.tables.correct_completion(t, 0, now=0.01)
        assert harness.tables.io_estimate(t.chunk) == before

    def test_prediction_error_absorbed(
        self, harness: MiniHarness, dataset_1g: Dataset
    ):
        """With two pending tasks, the first completion shifts Available
        by (actual - estimated) for that task."""
        j1, j2 = harness.job(dataset_1g), harness.job(dataset_1g)
        t1 = harness.ctx.decompose(j1)[0]
        t2 = harness.ctx.decompose(j2)[0]
        e1 = harness.tables.record_assignment(t1, 0, now=0.0)
        e2 = harness.tables.record_assignment(t2, 0, now=0.0)
        actual = e1 + 1.0  # ran a second longer than predicted
        t1.start_time, t1.finish_time = 0.0, actual
        t1.cache_hit, t1.io_time = False, actual - 0.01
        harness.tables.correct_completion(t1, 0, now=actual)
        assert harness.tables.available[0] == pytest.approx(e1 + e2 + 1.0)

"""Tests for the Round-Robin baseline."""

import pytest

from repro.core.chunks import Dataset
from repro.core.rr import RRScheduler
from repro.core.scheduler_base import Trigger
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness


class TestRR:
    def test_trigger_immediate(self):
        assert RRScheduler.trigger is Trigger.IMMEDIATE

    def test_cyclic_dealing(self, harness, dataset_1g):
        sched = RRScheduler()
        job = harness.job(dataset_1g)
        sched.schedule([job], harness.ctx)
        nodes = [a.node for a in harness.ctx.take_assignments()]
        assert nodes == [0, 1, 2, 3]

    def test_cursor_persists_across_jobs(self, harness):
        sched = RRScheduler()
        ds = Dataset("small", 512 * MiB)  # 2 tasks
        sched.schedule([harness.job(ds)], harness.ctx)
        first = [a.node for a in harness.ctx.take_assignments()]
        sched.schedule([harness.job(ds)], harness.ctx)
        second = [a.node for a in harness.ctx.take_assignments()]
        assert first == [0, 1]
        assert second == [2, 3]

    def test_ignores_load(self, harness, dataset_1g):
        """A saturated node still receives its turn (RR's blindness)."""
        sched = RRScheduler()
        harness.tables.available[1] = 100.0
        harness.tables.heap.update(1)
        job = harness.job(dataset_1g)
        sched.schedule([job], harness.ctx)
        nodes = [a.node for a in harness.ctx.take_assignments()]
        assert 1 in nodes

    def test_skips_failed_nodes(self, harness, dataset_1g):
        sched = RRScheduler()
        harness.tables.mark_node_failed(1)
        job = harness.job(dataset_1g)
        sched.schedule([job], harness.ctx)
        nodes = [a.node for a in harness.ctx.take_assignments()]
        assert 1 not in nodes
        assert len(nodes) == 4

    def test_all_failed_raises(self, harness, dataset_1g):
        sched = RRScheduler()
        for k in range(4):
            harness.tables.mark_node_failed(k)
        with pytest.raises(RuntimeError, match="no schedulable"):
            sched.schedule([harness.job(dataset_1g)], harness.ctx)

    def test_reset(self, harness):
        sched = RRScheduler()
        ds = Dataset("small", 256 * MiB)
        sched.schedule([harness.job(ds)], harness.ctx)
        harness.ctx.take_assignments()
        sched.reset()
        sched.schedule([harness.job(ds)], harness.ctx)
        (a,) = harness.ctx.take_assignments()
        assert a.node == 0

    def test_registry_has_rr(self):
        from repro.core.registry import SCHEDULER_NAMES, make_scheduler

        assert "RR" in SCHEDULER_NAMES
        assert isinstance(make_scheduler("rr"), RRScheduler)

    def test_end_to_end_poor_locality(self):
        """On Scenario 1 (scaled), RR lands between FCFS and the
        locality-aware schedulers: balanced but cache-blind."""
        from repro.sim.simulator import run_simulation
        from repro.workload.scenarios import scenario_1

        sc = scenario_1(scale=0.2)
        rr = run_simulation(sc, "RR")
        ours = run_simulation(sc, "OURS")
        assert rr.interactive_fps < 0.5 * ours.interactive_fps
        assert rr.hit_rate < ours.hit_rate

"""Tests for datasets, chunks, and decomposition policies (§III-C)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import (
    Chunk,
    ChunkedDecomposition,
    Dataset,
    UniformDecomposition,
    dataset_suite,
    total_size,
)
from repro.util.units import GiB, MiB


class TestChunk:
    def test_key_and_hashability(self):
        a = Chunk("ds", 0, 100)
        b = Chunk("ds", 0, 100)
        assert a == b
        assert a.key == ("ds", 0)
        assert len({a, b}) == 1

    def test_distinct_chunks(self):
        assert Chunk("ds", 0, 100) != Chunk("ds", 1, 100)
        assert Chunk("a", 0, 100) != Chunk("b", 0, 100)


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset("x", 0)
        with pytest.raises(ValueError):
            Dataset("", 10)


class TestChunkedDecomposition:
    def test_paper_example_2gb_512mb(self):
        """Scenario 1: a 2 GB dataset with Chkmax=512 MB → 4 tasks."""
        policy = ChunkedDecomposition(512 * MiB)
        chunks = policy.decompose(Dataset("ds", 2 * GiB))
        assert len(chunks) == 4
        assert all(c.size == 512 * MiB for c in chunks)

    def test_paper_example_8gb_512mb(self):
        """Scenario 3: an 8 GB dataset → 16 tasks."""
        policy = ChunkedDecomposition(512 * MiB)
        assert policy.chunk_count(Dataset("ds", 8 * GiB)) == 16

    def test_ceiling_division(self):
        policy = ChunkedDecomposition(512 * MiB)
        assert policy.chunk_count(Dataset("ds", 2 * GiB + 1)) == 5

    def test_small_dataset_single_chunk(self):
        policy = ChunkedDecomposition(512 * MiB)
        chunks = policy.decompose(Dataset("ds", 100))
        assert len(chunks) == 1
        assert chunks[0].size == 100

    def test_memoized_identity(self):
        policy = ChunkedDecomposition(512 * MiB)
        ds = Dataset("ds", 2 * GiB)
        assert policy.decompose(ds) is policy.decompose(ds)

    def test_same_name_different_size_not_confused(self):
        policy = ChunkedDecomposition(512 * MiB)
        a = policy.decompose(Dataset("ds", 2 * GiB))
        b = policy.decompose(Dataset("ds", 1 * GiB))
        assert len(a) == 4 and len(b) == 2

    @given(
        size=st.integers(1, 10 * GiB),
        chunk_max=st.integers(1 * MiB, 2 * GiB),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_chunk_count_and_conservation(self, size, chunk_max):
        """m = ceil(size / Chkmax); bytes conserved; sizes bounded."""
        policy = ChunkedDecomposition(chunk_max)
        chunks = policy.decompose(Dataset("ds", size))
        assert len(chunks) == max(1, math.ceil(size / chunk_max))
        assert sum(c.size for c in chunks) == size
        assert all(c.size <= chunk_max for c in chunks)
        sizes = [c.size for c in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert [c.index for c in chunks] == list(range(len(chunks)))


class TestUniformDecomposition:
    def test_one_chunk_per_node(self):
        policy = UniformDecomposition(8)
        chunks = policy.decompose(Dataset("ds", 2 * GiB))
        assert len(chunks) == 8
        assert all(c.size == 256 * MiB for c in chunks)

    @given(size=st.integers(8, GiB), nodes=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_property_conservation(self, size, nodes):
        policy = UniformDecomposition(nodes)
        chunks = policy.decompose(Dataset("ds", size))
        assert len(chunks) == nodes
        assert sum(c.size for c in chunks) == size


class TestSuite:
    def test_dataset_suite_names_and_sizes(self):
        suite = dataset_suite(12, 2 * GiB)
        assert len(suite) == 12
        assert suite[0].name == "ds00"
        assert suite[11].name == "ds11"
        assert total_size(suite) == 24 * GiB

    def test_suite_names_unique(self):
        suite = dataset_suite(128, GiB)
        assert len({d.name for d in suite}) == 128

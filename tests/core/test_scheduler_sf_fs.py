"""Tests for the Shortest-First and Fair-Sharing baselines."""

import pytest

from repro.core.chunks import Dataset
from repro.core.fs import FSScheduler
from repro.core.job import JobType
from repro.core.scheduler_base import Trigger
from repro.core.sf import SFScheduler
from repro.util.units import GiB, MiB

from tests.conftest import MiniHarness


class TestSF:
    def test_trigger_window(self):
        assert SFScheduler.trigger is Trigger.WINDOW

    def test_validation(self):
        with pytest.raises(ValueError):
            SFScheduler(window_size=0)
        with pytest.raises(ValueError):
            SFScheduler(window_timeout=0)

    def test_shortest_job_first(self, harness):
        """A 1-chunk job is scheduled before a 4-chunk job regardless of
        arrival order."""
        sched = SFScheduler()
        big = harness.job(Dataset("big", 1 * GiB), action=0)
        small = harness.job(Dataset("small", 256 * MiB), action=1)
        sched.schedule([big, small], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert assignments[0].task.job is small
        assert len(assignments) == 5

    def test_equal_estimates_keep_arrival_order(self, harness):
        sched = SFScheduler()
        a = harness.job(Dataset("a", 256 * MiB), action=0)
        b = harness.job(Dataset("b", 256 * MiB), action=1)
        sched.schedule([a, b], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert assignments[0].task.job is a

    def test_cached_chunks_shorten_estimate(self, harness):
        """SF job estimates use the Estimate table (cold), so a smaller
        dataset always wins even if a bigger one is cached."""
        sched = SFScheduler()
        big = Dataset("big", GiB)
        for c in harness.decomposition.decompose(big):
            harness.tables.warm(c, 0)
        j_big = harness.job(big, action=0)
        j_small = harness.job(Dataset("small", 512 * MiB), action=1)
        sched.schedule([j_big, j_small], harness.ctx)
        assignments = harness.ctx.take_assignments()
        assert assignments[0].task.job is j_small


class TestFS:
    def test_trigger_cycle(self):
        assert FSScheduler.trigger is Trigger.CYCLE

    def test_validation(self):
        with pytest.raises(ValueError):
            FSScheduler(cycle=0)

    def test_least_served_user_first(self, harness):
        sched = FSScheduler()
        ds = Dataset("ds", 256 * MiB)
        # User 0 consumed a lot in a previous cycle.
        heavy = [harness.job(ds, user=0, action=i) for i in range(3)]
        sched.schedule(heavy, harness.ctx)
        harness.ctx.take_assignments()
        j0 = harness.job(ds, user=0, action=10)
        j1 = harness.job(ds, user=1, action=11)
        sched.schedule([j0, j1], harness.ctx)
        assignments = harness.ctx.take_assignments()
        # The fresh user 1 goes first.
        assert assignments[0].task.job is j1

    def test_round_robin_between_equal_users(self, harness):
        sched = FSScheduler()
        ds = Dataset("ds", 256 * MiB)
        jobs = [harness.job(ds, user=u, action=u) for u in (0, 1, 0, 1)]
        sched.schedule(jobs, harness.ctx)
        assignments = harness.ctx.take_assignments()
        users = [a.task.job.user for a in assignments]
        assert users == [0, 1, 0, 1]

    def test_all_jobs_scheduled_within_cycle(self, harness, dataset_1g):
        sched = FSScheduler()
        jobs = [harness.job(dataset_1g, user=u) for u in range(3)]
        sched.schedule(jobs, harness.ctx)
        assert len(harness.ctx.take_assignments()) == 12
        assert sched.pending_task_count() == 0

    def test_usage_normalization_bounded(self, harness):
        """Usage counters do not grow without bound across cycles."""
        sched = FSScheduler()
        ds = Dataset("ds", 256 * MiB)
        for cycle in range(50):
            jobs = [harness.job(ds, user=u, action=cycle) for u in (0, 1)]
            sched.schedule(jobs, harness.ctx)
            harness.ctx.take_assignments()
        charge = harness.tables.estimate(
            harness.decomposition.decompose(ds)[0], 1
        )
        assert max(sched._usage.values()) <= 2 * charge + 1e-9

    def test_reset_clears_state(self, harness, dataset_1g):
        sched = FSScheduler()
        sched.schedule([harness.job(dataset_1g, user=5)], harness.ctx)
        harness.ctx.take_assignments()
        sched.reset()
        assert sched._usage == {}
        assert sched.pending_task_count() == 0

    def test_empty_cycle_noop(self, harness):
        sched = FSScheduler()
        sched.schedule([], harness.ctx)
        assert harness.ctx.take_assignments() == []

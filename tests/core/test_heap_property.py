"""Model-based property tests for the availability views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import (
    ArgminAvailability,
    MinScanAvailability,
    NodeAvailabilityHeap,
)


@given(
    n=st.integers(1, 12),
    ops=st.lists(
        st.tuples(st.integers(0, 11), st.floats(0.0, 100.0)), max_size=150
    ),
)
@settings(max_examples=200, deadline=None)
def test_min_node_matches_linear_scan(n, ops):
    """After any sequence of updates, min_node agrees with a scan."""
    available = [0.0] * n
    heap = NodeAvailabilityHeap(available)
    for node, value in ops:
        node %= n
        available[node] = value
        heap.update(node)
        best = heap.min_node()
        assert available[best] == min(available)


@given(
    n=st.integers(2, 8),
    ops=st.lists(
        st.tuples(st.integers(0, 7), st.floats(0.0, 50.0)), max_size=60
    ),
    excluded_bits=st.integers(0, 254),
)
@settings(max_examples=150, deadline=None)
def test_min_excluding_matches_linear_scan(n, ops, excluded_bits):
    available = [0.0] * n
    heap = NodeAvailabilityHeap(available)
    for node, value in ops:
        node %= n
        available[node] = value
        heap.update(node)
    excluded = {k for k in range(n) if excluded_bits & (1 << k)}
    result = heap.min_node_excluding(excluded)
    remaining = [k for k in range(n) if k not in excluded]
    if not remaining:
        assert result is None
    else:
        assert result is not None
        assert available[result] == min(available[k] for k in remaining)
    # Non-destructive: global min still correct afterwards.
    assert available[heap.min_node()] == min(available)


class TestHeapCompaction:
    """Regression tests: lazy deletion must not grow the heap unboundedly.

    Before compaction, every ``update`` pushed a fresh entry and left the
    stale one in place — a long run accumulated one dead tuple per table
    write, degrading ``min_node`` toward O(n log n) and leaking memory.
    The heap now rebuilds whenever stale entries would outnumber live
    ones, pinning its footprint below ``2p`` entries forever.
    """

    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_heap_size_pinned_below_two_p(self, p):
        available = [0.0] * p
        heap = NodeAvailabilityHeap(available)
        for i in range(50 * p):
            node = i % p
            available[node] = float(i)
            heap.update(node)
            assert len(heap) < 2 * p, (
                f"heap grew to {len(heap)} entries after {i + 1} updates "
                f"(p={p}): compaction never ran"
            )

    def test_min_node_correct_across_many_compactions(self):
        p = 8
        available = [0.0] * p
        heap = NodeAvailabilityHeap(available)
        for i in range(400):
            node = (i * 5) % p
            available[node] = float((i * 7919) % 100)
            heap.update(node)
            best = heap.min_node()
            assert available[best] == min(available)
            # First-minimum tie order, same as the scan view.
            assert best == available.index(min(available))


@given(
    n=st.integers(1, 12),
    ops=st.lists(
        st.tuples(st.integers(0, 11), st.floats(0.0, 100.0)), max_size=100
    ),
    excluded_bits=st.integers(0, 4094),
)
@settings(max_examples=150, deadline=None)
def test_all_views_agree(n, ops, excluded_bits):
    """The three availability views are interchangeable bit-for-bit."""
    import numpy as np

    available = [0.0] * n
    arr = np.zeros(n, dtype=np.float64)
    scan = MinScanAvailability(available)
    heap = NodeAvailabilityHeap(available)
    argmin = ArgminAvailability(arr)
    for node, value in ops:
        node %= n
        available[node] = value
        arr[node] = value
        heap.update(node)
        assert scan.min_node() == heap.min_node() == argmin.min_node()
    excluded = {k for k in range(n) if excluded_bits & (1 << k)}
    assert (
        scan.min_node_excluding(excluded)
        == heap.min_node_excluding(excluded)
        == argmin.min_node_excluding(excluded)
    )

"""Model-based property tests for the availability heap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import NodeAvailabilityHeap


@given(
    n=st.integers(1, 12),
    ops=st.lists(
        st.tuples(st.integers(0, 11), st.floats(0.0, 100.0)), max_size=150
    ),
)
@settings(max_examples=200, deadline=None)
def test_min_node_matches_linear_scan(n, ops):
    """After any sequence of updates, min_node agrees with a scan."""
    available = [0.0] * n
    heap = NodeAvailabilityHeap(available)
    for node, value in ops:
        node %= n
        available[node] = value
        heap.update(node)
        best = heap.min_node()
        assert available[best] == min(available)


@given(
    n=st.integers(2, 8),
    ops=st.lists(
        st.tuples(st.integers(0, 7), st.floats(0.0, 50.0)), max_size=60
    ),
    excluded_bits=st.integers(0, 254),
)
@settings(max_examples=150, deadline=None)
def test_min_excluding_matches_linear_scan(n, ops, excluded_bits):
    available = [0.0] * n
    heap = NodeAvailabilityHeap(available)
    for node, value in ops:
        node %= n
        available[node] = value
        heap.update(node)
    excluded = {k for k in range(n) if excluded_bits & (1 << k)}
    result = heap.min_node_excluding(excluded)
    remaining = [k for k in range(n) if k not in excluded]
    if not remaining:
        assert result is None
    else:
        assert result is not None
        assert available[result] == min(available[k] for k in remaining)
    # Non-destructive: global min still correct afterwards.
    assert available[heap.min_node()] == min(available)

"""Tests for the paper's cost model (Definitions 1-4), incl. properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.cost_model import (
    action_framerate,
    framerate,
    job_execution_time,
    job_latency,
    mean,
    mean_execution_time,
    mean_latency,
    percentile,
    task_alpha,
    task_execution_time,
)
from repro.core.job import JobType, RenderJob
from repro.util.units import GiB, MiB

POLICY = ChunkedDecomposition(512 * MiB)


def completed_job(arrival=1.0, starts=(2.0,), finishes=(3.0,), io=(0.5,)):
    size = len(starts) * 512 * MiB
    job = RenderJob(JobType.INTERACTIVE, Dataset("ds", size), arrival)
    tasks = job.decompose(POLICY)
    for t, s, f, i in zip(tasks, starts, finishes, io):
        t.start_time, t.finish_time, t.io_time = s, f, i
    job.finish_time = max(finishes) + 0.001  # + compositing
    return job


class TestDefinition1:
    def test_task_execution_time(self):
        job = completed_job()
        assert task_execution_time(job.tasks[0]) == pytest.approx(1.0)

    def test_task_alpha_is_remainder(self):
        job = completed_job()
        assert task_alpha(job.tasks[0]) == pytest.approx(0.5)

    def test_incomplete_task_raises(self):
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", 512 * MiB), 0.0)
        task = job.decompose(POLICY)[0]
        with pytest.raises(ValueError):
            task_execution_time(task)

    def test_io_dominates_simplification(self):
        """TExec ≈ t_io + α with α ≪ t_io for a cold 512 MiB chunk."""
        io = 5.13
        job = completed_job(starts=(0.0,), finishes=(io + 0.008,), io=(io,))
        alpha = task_alpha(job.tasks[0])
        assert alpha < 0.01 * io


class TestDefinitions2and3:
    def test_job_execution_time(self):
        job = completed_job(
            starts=(2.0, 2.5), finishes=(3.0, 4.0), io=(0.0, 0.0)
        )
        assert job_execution_time(job) == pytest.approx(4.001 - 2.0)

    def test_job_latency(self):
        job = completed_job(arrival=1.0)
        assert job_latency(job) == pytest.approx(3.001 - 1.0)

    def test_incomplete_job_raises(self):
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", 512 * MiB), 0.0)
        job.decompose(POLICY)
        with pytest.raises(ValueError):
            job_latency(job)


class TestDefinition4:
    def test_uniform_spacing(self):
        times = [0.0, 0.03, 0.06, 0.09]
        assert framerate(times) == pytest.approx(1 / 0.03)

    def test_telescoping_equivalence(self):
        times = [0.0, 0.01, 0.05, 0.2]
        assert framerate(times) == pytest.approx((len(times) - 1) / (0.2 - 0.0))

    def test_fewer_than_two_is_zero(self):
        assert framerate([]) == 0.0
        assert framerate([1.0]) == 0.0

    def test_decreasing_raises(self):
        with pytest.raises(ValueError):
            framerate([1.0, 0.5])

    def test_simultaneous_finishes_infinite(self):
        assert framerate([1.0, 1.0]) == math.inf

    def test_action_framerate_ignores_incomplete(self):
        jobs = [completed_job(finishes=(1.0 + 0.05 * i,)) for i in range(5)]
        unfinished = RenderJob(
            JobType.INTERACTIVE, Dataset("ds", 512 * MiB), 0.0
        )
        unfinished.decompose(POLICY)
        rate = action_framerate(jobs + [unfinished])
        assert rate == pytest.approx(1 / 0.05)

    @given(
        st.lists(st.floats(0.001, 1.0), min_size=2, max_size=50).map(
            lambda gaps: [sum(gaps[:i]) for i in range(len(gaps) + 1)]
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_framerate_bounds(self, times):
        """Framerate lies between reciprocal max and min gap."""
        gaps = [b - a for a, b in zip(times, times[1:])]
        rate = framerate(times)
        assert 1 / max(gaps) - 1e-9 <= rate <= 1 / min(gaps) + 1e-9


class TestAggregates:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_percentile_basics(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_percentile_single_element(self):
        for q in (0, 37.5, 50, 99, 100):
            assert percentile([7.25], q) == 7.25

    def test_percentile_extremes_match_min_max(self):
        values = [5.0, -2.0, 11.0, 3.0]
        assert percentile(values, 0) == -2.0
        assert percentile(values, 100) == 11.0

    def test_percentile_unsorted_input(self):
        # The input order must not matter: the implementation sorts.
        shuffled = [4.0, 1.0, 3.0, 2.0]
        assert percentile(shuffled, 50) == pytest.approx(2.5)
        assert percentile(shuffled, 75) == pytest.approx(3.25)

    def test_percentile_interpolates_between_two_values(self):
        # pos = (2 - 1) * q / 100, so q maps linearly onto [10, 20].
        assert percentile([10.0, 20.0], 25) == pytest.approx(12.5)
        assert percentile([10.0, 20.0], 99) == pytest.approx(19.9)

    def test_percentile_negative_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_property_percentile_within_range(self, values):
        for q in (0, 25, 50, 75, 100):
            p = percentile(values, q)
            assert min(values) - 1e-9 <= p <= max(values) + 1e-9

    def test_mean_latency_and_execution(self):
        jobs = [
            completed_job(arrival=0.0, starts=(0.5,), finishes=(1.0,)),
            completed_job(arrival=0.0, starts=(0.5,), finishes=(3.0,)),
        ]
        # Latencies: 1.001 and 3.001; executions: 0.501 and 2.501.
        assert mean_latency(jobs) == pytest.approx(2.001)
        assert mean_execution_time(jobs) == pytest.approx(1.501)

"""Tests for the scheduler registry."""

import pytest

from repro.core.fcfs import FCFSScheduler
from repro.core.ours import OursScheduler
from repro.core.registry import SCHEDULER_NAMES, make_scheduler, register_scheduler
from repro.core.scheduler_base import Scheduler, Trigger


class TestMakeScheduler:
    def test_all_six_paper_schedulers_present(self):
        assert set(SCHEDULER_NAMES) >= {"FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS"}

    @pytest.mark.parametrize("name", ["FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS"])
    def test_instantiates_fresh(self, name):
        a = make_scheduler(name)
        b = make_scheduler(name)
        assert a is not b
        assert a.name == name

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("ours"), OursScheduler)

    def test_kwargs_forwarded(self):
        sched = make_scheduler("OURS", cycle=0.005)
        assert sched.cycle == 0.005

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="OURS"):
            make_scheduler("NOPE")


class TestRegisterScheduler:
    def test_register_custom(self):
        class Custom(Scheduler):
            name = "CUSTOM-X"
            trigger = Trigger.IMMEDIATE

            def schedule(self, jobs, ctx):
                for job in jobs:
                    for task in ctx.decompose(job):
                        ctx.assign(task, 0)

        register_scheduler("CUSTOM-X", Custom)
        try:
            assert isinstance(make_scheduler("custom-x"), Custom)
            assert "CUSTOM-X" in SCHEDULER_NAMES
        finally:
            from repro.core import registry

            registry._FACTORIES.pop("CUSTOM-X", None)
            SCHEDULER_NAMES.remove("CUSTOM-X")

    def test_cannot_shadow_builtin(self):
        with pytest.raises(ValueError):
            register_scheduler("OURS", FCFSScheduler)

"""Tests for rendering jobs and tasks."""

import pytest

from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.util.units import GiB, MiB

POLICY = ChunkedDecomposition(512 * MiB)


def make_job(size=2 * GiB, job_type=JobType.INTERACTIVE, **kw):
    return RenderJob(job_type, Dataset("ds", size), 1.0, **kw)


class TestDecomposition:
    def test_decompose_creates_tasks(self):
        job = make_job()
        tasks = job.decompose(POLICY)
        assert len(tasks) == 4
        assert job.task_count == 4
        assert job.composite_group_size == 4
        assert [t.index for t in tasks] == [0, 1, 2, 3]
        assert all(t.job is job for t in tasks)

    def test_decompose_idempotent(self):
        job = make_job()
        first = job.decompose(POLICY)
        second = job.decompose(POLICY)
        assert first is second

    def test_task_type_follows_job(self):
        job = make_job(job_type=JobType.BATCH)
        assert all(t.job_type is JobType.BATCH for t in job.decompose(POLICY))


class TestIds:
    def test_ids_monotonic(self):
        a, b = make_job(), make_job()
        assert b.job_id == a.job_id + 1

    def test_metadata_fields(self):
        job = make_job(user=3, action=7, sequence=12)
        assert (job.user, job.action, job.sequence) == (3, 7, 12)


class TestTiming:
    def test_start_finish_and_completion(self):
        job = make_job()
        tasks = job.decompose(POLICY)
        assert not job.is_complete
        for i, t in enumerate(tasks):
            t.start_time = 2.0 + i
            t.finish_time = 3.0 + i
        assert job.is_complete
        assert job.start_time() == 2.0
        assert job.last_task_finish() == 6.0

    def test_start_time_requires_started_tasks(self):
        job = make_job()
        job.decompose(POLICY)
        with pytest.raises(ValueError):
            job.start_time()
        with pytest.raises(ValueError):
            job.last_task_finish()

    def test_group_nodes_distinct_in_order(self):
        job = make_job()
        tasks = job.decompose(POLICY)
        for t, node in zip(tasks, [2, 0, 2, 1]):
            t.node = node
        assert job.group_nodes() == [2, 0, 1]

    def test_task_done_flag(self):
        job = make_job()
        task = job.decompose(POLICY)[0]
        assert not task.done
        task.finish_time = 5.0
        assert task.done

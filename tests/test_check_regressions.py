"""Tests for the benchmark regression gate (benchmarks/check_regressions.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regressions.py"
COMMITTED_BASELINES = Path(__file__).parent.parent / "benchmarks" / "baselines"

PAYLOAD = {
    "scenario": 2,
    "scale": 0.05,
    "schedulers": {
        "OURS": {
            "interactive_fps": 30.0,
            "interactive_latency": 0.05,
            "hit_rate": 1.0,
            "wall_s": 1.0,
        }
    },
}


def run_gate(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
    )


@pytest.fixture()
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    (baselines / "BENCH_fig5.json").write_text(json.dumps(PAYLOAD))
    (results / "BENCH_fig5.json").write_text(json.dumps(PAYLOAD))
    return results, baselines


def test_identical_results_pass(dirs):
    results, baselines = dirs
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no regressions" in proc.stdout


def test_perturbation_beyond_tolerance_fails(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["schedulers"]["OURS"]["interactive_fps"] *= 0.8  # 20% drop
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout
    assert "interactive_fps" in proc.stdout


def test_drift_within_tolerance_passes(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["schedulers"]["OURS"]["interactive_fps"] *= 1.01  # within 2%
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0


def test_wall_clock_keys_never_gate(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["schedulers"]["OURS"]["wall_s"] = 500.0  # machine-dependent
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0


def test_scale_mismatch_skips_with_warning(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["scale"] = 1.0
    fresh["schedulers"]["OURS"]["interactive_fps"] = 1.0  # would regress
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0
    assert "scale mismatch" in proc.stdout


def test_missing_fresh_results_warn_but_pass(dirs):
    results, baselines = dirs
    (results / "BENCH_fig5.json").unlink()
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0
    assert "no fresh results" in proc.stdout


def test_missing_baseline_dir_is_usage_error(tmp_path):
    proc = run_gate(
        "--results", str(tmp_path), "--baselines", str(tmp_path / "nope")
    )
    assert proc.returncode == 2


def test_dropped_metric_is_a_regression(dirs):
    """A baseline leaf missing from fresh results must gate the build."""
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    del fresh["schedulers"]["OURS"]["hit_rate"]
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout
    assert "hit_rate" in proc.stdout
    assert "missing from fresh results" in proc.stdout


def test_dropped_wall_clock_key_does_not_gate(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    del fresh["schedulers"]["OURS"]["wall_s"]
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0


def test_new_metric_only_warns(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["schedulers"]["OURS"]["brand_new"] = 1.0
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate("--results", str(results), "--baselines", str(baselines))
    assert proc.returncode == 0
    assert "new metric" in proc.stdout


def test_update_refreshes_baselines(dirs):
    results, baselines = dirs
    fresh = json.loads((results / "BENCH_fig5.json").read_text())
    fresh["schedulers"]["OURS"]["interactive_fps"] = 99.0
    (results / "BENCH_fig5.json").write_text(json.dumps(fresh))
    proc = run_gate(
        "--update", "--results", str(results), "--baselines", str(baselines)
    )
    assert proc.returncode == 0
    updated = json.loads((baselines / "BENCH_fig5.json").read_text())
    assert updated["schedulers"]["OURS"]["interactive_fps"] == 99.0


def test_update_prunes_stale_baselines(dirs):
    """--update removes baselines whose bench emitted no fresh results."""
    results, baselines = dirs
    stale = baselines / "BENCH_gone.json"
    stale.write_text(json.dumps(PAYLOAD))
    proc = run_gate(
        "--update", "--results", str(results), "--baselines", str(baselines)
    )
    assert proc.returncode == 0
    assert not stale.exists()
    assert "removed stale baseline" in proc.stdout
    assert (baselines / "BENCH_fig5.json").exists()


def test_committed_baselines_are_valid_json():
    files = sorted(COMMITTED_BASELINES.glob("BENCH_*.json"))
    assert files, "no committed baselines under benchmarks/baselines/"
    for path in files:
        payload = json.loads(path.read_text())
        assert payload, path

"""Job-id allocation: per-run allocators, shard namespaces, no globals.

Job ids used to come from a process-global ``itertools.count``; they
now come from an explicit :class:`~repro.core.JobIdAllocator` carried
by each :class:`~repro.sim.VisualizationService`, so every run starts
at id 0 (reports are byte-identical across reruns with no reset call)
and federated shards draw from disjoint namespaces.
"""

import pytest

from repro.core.job import (
    NAMESPACE_STRIDE,
    JobIdAllocator,
    JobType,
    RenderJob,
)
from repro.core.chunks import Dataset
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario
from repro.util.units import GiB


class TestJobIdAllocator:
    def test_namespace_zero_counts_from_zero(self):
        ids = JobIdAllocator()
        assert [ids.allocate() for _ in range(3)] == [0, 1, 2]
        assert ids.allocated == 3

    def test_namespaced_ids_are_disjoint(self):
        a, b = JobIdAllocator(0), JobIdAllocator(1)
        ids_a = {a.allocate() for _ in range(100)}
        ids_b = {b.allocate() for _ in range(100)}
        assert not ids_a & ids_b
        assert min(ids_b) == NAMESPACE_STRIDE

    def test_negative_namespace_rejected(self):
        with pytest.raises(ValueError, match="namespace"):
            JobIdAllocator(-1)

    def test_explicit_job_id_bypasses_allocation(self):
        dataset = Dataset("d", 1 * GiB)
        job = RenderJob(
            JobType.INTERACTIVE, dataset, 0.0, user=1, job_id=123
        )
        assert job.job_id == 123


class TestRunsStartAtZero:
    def test_every_run_counts_from_zero(self):
        """Two identical runs produce identical job ids — no global
        counter state leaks between them."""
        scenario = make_scenario(1, scale=0.05)
        first = run_simulation(scenario, "OURS", RunConfig())
        second = run_simulation(scenario, "OURS", RunConfig())
        assert [r.job_id for r in first.records] == [
            r.job_id for r in second.records
        ]
        assert min(r.job_id for r in first.records) == 0

    def test_job_namespace_shifts_every_id(self):
        scenario = make_scenario(1, scale=0.05)
        base = run_simulation(scenario, "OURS", RunConfig())
        shifted = run_simulation(
            scenario, "OURS", RunConfig(job_namespace=3)
        )
        assert [r.job_id for r in shifted.records] == [
            r.job_id + 3 * NAMESPACE_STRIDE for r in base.records
        ]

"""Tests for the top-level simulation runner."""

import pytest

from repro.cluster.storage import StorageSpec
from repro.core.chunks import dataset_suite
from repro.sim.config import system_linux8
from repro.sim.run_config import RunConfig
from repro.sim.simulator import compare_schedulers, run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.scenarios import Scenario, custom_scenario


def tiny_scenario(duration=2.0, datasets=2, nodes=4, prewarm=True):
    system = system_linux8(node_count=nodes)
    suite = dataset_suite(datasets, 2 * GiB)
    trace = persistent_actions(
        suite, duration, target_framerate=100.0 / 3.0, seed=0, name="tiny"
    )
    return Scenario(
        name="tiny", system=system, trace=trace, prewarm=prewarm
    )


class TestRunSimulation:
    def test_basic_run_completes_jobs(self):
        scenario = tiny_scenario()
        assert scenario.trace.interactive_count == 2 * 67  # 67 per action
        result = run_simulation(scenario, "OURS")
        assert result.scheduler_name == "OURS"
        # Phase offsets + jitter can push the last couple of requests
        # past the horizon; everything else is submitted.
        assert 2 * 67 - 4 <= result.jobs_submitted <= 2 * 67
        assert result.jobs_completed > 0.9 * result.jobs_submitted
        assert result.hit_rate > 0.99  # prewarmed
        assert result.events_processed > 0

    def test_scheduler_instance_accepted(self):
        from repro.core.ours import OursScheduler

        result = run_simulation(tiny_scenario(), OursScheduler(cycle=0.01))
        assert result.jobs_completed > 0

    def test_deterministic(self):
        sc = tiny_scenario()
        a = run_simulation(sc, "OURS")
        b = run_simulation(sc, "OURS")
        assert a.jobs_completed == b.jobs_completed
        assert [r.finish for r in a.records] == [r.finish for r in b.records]
        assert a.hit_rate == b.hit_rate

    def test_cold_start_without_prewarm(self):
        result = run_simulation(
            tiny_scenario(prewarm=False), "OURS", config=RunConfig(drain=True)
        )
        assert result.hit_rate < 1.0  # first touch of each chunk misses
        misses = result.tasks_executed - result.tasks_hit
        assert misses >= 8  # 2 datasets x 4 chunks at least once

    def test_metrics_surface(self):
        result = run_simulation(tiny_scenario(), "OURS")
        assert 0 < result.interactive_fps <= 34.0
        assert result.interactive_latency.count > 0
        assert result.batch_latency.count == 0
        assert result.sched_cost_us > 0
        assert 0 < result.mean_node_utilization <= 1.0
        summary = result.summary()
        assert summary.scheduler == "OURS"

    def test_fps_definition4_also_available(self):
        result = run_simulation(tiny_scenario(), "OURS")
        assert result.interactive_fps_definition4 == pytest.approx(
            result.interactive_fps, rel=0.15
        )

    def test_drain_completes_everything(self):
        # No prewarm and a short horizon: work outlives the trace.
        result = run_simulation(
            tiny_scenario(duration=0.5, prewarm=False),
            "FCFS",
            config=RunConfig(drain=True),
        )
        assert result.drained
        assert result.jobs_completed == result.jobs_submitted
        assert result.simulated_time > 0.5

    def test_drain_time_bounded(self):
        result = run_simulation(
            tiny_scenario(duration=0.5, prewarm=False),
            "FCFS",
            config=RunConfig(drain=True, max_drain_time=0.2),
        )
        assert result.simulated_time <= 0.5 + 0.2 + 1e-9

    def test_horizon_mode_reports_unfinished(self):
        result = run_simulation(
            tiny_scenario(duration=0.5, prewarm=False), "FCFS"
        )
        assert result.unfinished_jobs > 0
        assert not result.drained


class TestCompareSchedulers:
    def test_runs_all(self):
        results = compare_schedulers(tiny_scenario(), ["OURS", "FCFSL", "FCFS"])
        assert [r.scheduler_name for r in results] == ["OURS", "FCFSL", "FCFS"]
        # Identical trace: same submissions everywhere.
        assert len({r.jobs_submitted for r in results}) == 1

    def test_fresh_cluster_per_run(self):
        results = compare_schedulers(tiny_scenario(), ["OURS", "OURS"])
        assert results[0].jobs_completed == results[1].jobs_completed


class TestNodeFailureInjection:
    def test_crash_schedule_survives(self):
        # The legacy spelling still works (behind a DeprecationWarning).
        with pytest.warns(DeprecationWarning, match="node_failures"):
            config = RunConfig(node_failures=[(1.0, 1)])
        result = run_simulation(tiny_scenario(duration=3.0), "OURS", config=config)
        assert result.jobs_completed > 0
        # Degrades versus the healthy run but keeps serving.
        healthy = run_simulation(tiny_scenario(duration=3.0), "OURS")
        assert result.interactive_fps <= healthy.interactive_fps

    def test_invalid_node_rejected(self):
        with pytest.warns(DeprecationWarning, match="node_failures"):
            config = RunConfig(node_failures=[(0.5, 99)])
        with pytest.raises(ValueError, match="fault plan references node"):
            run_simulation(tiny_scenario(duration=1.0), "OURS", config=config)

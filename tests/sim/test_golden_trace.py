"""Golden-trace determinism: assignment traces are bit-exact.

The hot-path optimization work (incremental backlog index, memoized
estimates, inlined scheduling loops) is only admissible because it is
*bit-identical* to the straightforward implementation.  These tests pin
the invariant the benchmarks rely on: the complete per-task assignment
trace — who ran what, where, and exactly when, hashed via ``float.hex``
so the last bit matters — is identical across repeated runs and across
serial vs. process-pool sweep execution.

Job ids come from each run's own :class:`~repro.core.JobIdAllocator`
and are deliberately absent from the trace records
(``(user, action, sequence)`` identifies a job), so hashes are stable
regardless of how many simulations ran before.
"""

import pytest

from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.sim.sweep import sweep
from repro.workload.scenarios import make_scenario

#: Smoke scale: big enough to exercise cached/non-cached phases and the
#: batch backlog (scenario 1 completes no tasks below 0.1), small
#: enough for the tier-1 suite.
SMOKE_SCALE = 0.1
SCHEDULERS = ["OURS", "FCFS", "FCFSL"]


def _run_trace(number: int, scheduler: str):
    scenario = make_scenario(number, scale=SMOKE_SCALE)
    return run_simulation(
        scenario, scheduler, RunConfig(record_assignments=True)
    )


def _scenario2_factory(scale: float):
    """Module-level so the process-pool sweep can pickle it."""
    return make_scenario(2, scale=scale)


class TestGoldenTraces:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("number", [1, 2])
    def test_two_runs_hash_identically(self, number, scheduler):
        first = _run_trace(number, scheduler)
        second = _run_trace(number, scheduler)
        assert first.assignment_trace, "trace must not be empty"
        assert (
            first.assignment_trace_hash() == second.assignment_trace_hash()
        )

    def test_trace_records_cover_all_executed_tasks(self):
        result = _run_trace(2, "OURS")
        assert len(result.assignment_trace) == result.tasks_executed

    def test_hash_requires_recording(self):
        scenario = make_scenario(1, scale=SMOKE_SCALE)
        result = run_simulation(scenario, "OURS", RunConfig())
        with pytest.raises(ValueError, match="record_assignments"):
            result.assignment_trace_hash()


class TestSweepParity:
    def test_serial_and_worker_sweeps_produce_identical_traces(self):
        """``workers=N`` must be a pure wall-clock optimization."""
        config = RunConfig(record_assignments=True)
        serial = sweep(
            "scale",
            [SMOKE_SCALE],
            _scenario2_factory,
            SCHEDULERS,
            config=config,
        )
        pooled = sweep(
            "scale",
            [SMOKE_SCALE],
            _scenario2_factory,
            SCHEDULERS,
            workers=3,
            config=config,
        )
        for scheduler in SCHEDULERS:
            serial_hash = serial.result(
                SMOKE_SCALE, scheduler
            ).assignment_trace_hash()
            pooled_hash = pooled.result(
                SMOKE_SCALE, scheduler
            ).assignment_trace_hash()
            assert serial_hash == pooled_hash, scheduler

"""Tests for the sweep/replication experiment harness."""

import functools

import pytest

from repro.core.chunks import dataset_suite
from repro.core.ours import OursScheduler
from repro.sim.config import system_linux8
from repro.sim.sweep import MetricStats, replicate, sweep
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.scenarios import Scenario


def scenario_with_actions(actions: float, seed: int = 0) -> Scenario:
    system = system_linux8(node_count=4)
    datasets = dataset_suite(2, 1 * GiB)
    trace = persistent_actions(
        datasets,
        1.5,
        actions=int(actions),
        target_framerate=100.0 / 3.0,
        seed=seed,
        name=f"sweep-a{actions}",
    )
    return Scenario(name=f"sweep-a{actions}", system=system, trace=trace)


class TestSweep:
    def test_grid_complete(self):
        result = sweep(
            "#actions",
            [1, 2],
            scenario_with_actions,
            ["OURS", "FCFS"],
        )
        assert result.schedulers == ["OURS", "FCFS"]
        assert set(result.results) == {
            (1, "OURS"),
            (1, "FCFS"),
            (2, "OURS"),
            (2, "FCFS"),
        }

    def test_series_and_table(self):
        result = sweep("#actions", [1, 2], scenario_with_actions, ["OURS"])
        series = result.series(lambda r: float(r.jobs_submitted))
        assert series["OURS"][1] > series["OURS"][0]
        text = result.table(lambda r: r.interactive_fps, title="t")
        assert "OURS" in text and "t" in text

    def test_scheduler_factories_accepted(self):
        result = sweep(
            "#actions",
            [1],
            scenario_with_actions,
            [lambda: OursScheduler(cycle=0.01)],
        )
        assert result.schedulers == ["OURS"]

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep("x", [], scenario_with_actions, ["OURS"])
        with pytest.raises(ValueError):
            sweep("x", [1], scenario_with_actions, [])


class TestParallelWorkers:
    """workers=N must reproduce the serial results exactly."""

    def test_sweep_parity(self):
        serial = sweep("#actions", [1, 2], scenario_with_actions, ["OURS", "FCFS"])
        parallel = sweep(
            "#actions",
            [1, 2],
            scenario_with_actions,
            ["OURS", "FCFS"],
            workers=2,
        )
        assert set(parallel.results) == set(serial.results)
        assert parallel.schedulers == serial.schedulers
        for key, serial_result in serial.results.items():
            parallel_result = parallel.results[key]
            assert parallel_result.jobs_completed == serial_result.jobs_completed
            assert parallel_result.interactive_fps == serial_result.interactive_fps
            assert parallel_result.hit_rate == serial_result.hit_rate

    def test_replicate_parity(self):
        factory = functools.partial(scenario_with_actions, 2)
        serial = replicate(factory, "OURS", seeds=[0, 1, 2])
        parallel = replicate(factory, "OURS", seeds=[0, 1, 2], workers=2)
        assert parallel.scheduler == serial.scheduler
        assert parallel.fps.values == serial.fps.values
        assert parallel.hit_rate.values == serial.hit_rate.values

    def test_workers_one_is_serial(self):
        result = sweep(
            "#actions", [1], scenario_with_actions, ["OURS"], workers=1
        )
        assert set(result.results) == {(1, "OURS")}

    def test_parallel_results_keep_profiles(self):
        result = sweep(
            "#actions", [1], scenario_with_actions, ["OURS"], workers=2
        )
        profile = result.result(1, "OURS").profile
        assert profile is not None
        assert len(profile.nodes) == 4


class TestMetricStats:
    def test_mean_std(self):
        stats = MetricStats.of([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)

    def test_single_value(self):
        stats = MetricStats.of([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0

    def test_empty(self):
        assert MetricStats.of([]).mean == 0.0

    def test_str(self):
        assert "n=2" in str(MetricStats.of([1.0, 2.0]))


class TestReplicate:
    def test_per_seed_runs(self):
        result = replicate(
            lambda seed: scenario_with_actions(2, seed=seed),
            "OURS",
            seeds=[0, 1, 2],
        )
        assert result.scheduler == "OURS"
        assert len(result.results) == 3
        assert result.fps.mean > 0
        assert len(result.fps.values) == 3

    def test_seed_sensitivity_visible(self):
        """Different seeds produce (slightly) different traces."""
        result = replicate(
            lambda seed: scenario_with_actions(2, seed=seed),
            "OURS",
            seeds=[0, 1, 2, 3],
        )
        latencies = result.interactive_latency.values
        assert len(set(latencies)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(lambda s: scenario_with_actions(1, s), "OURS", seeds=[])

"""Tests for the visualization service (head-node logic)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.cluster.storage import StorageSpec
from repro.core.chunks import Dataset, dataset_suite
from repro.core.job import JobType, RenderJob
from repro.core.ours import OursScheduler
from repro.core.fcfs import FCFSScheduler, FCFSUScheduler
from repro.core.sf import SFScheduler
from repro.sim.service import VisualizationService
from repro.util.units import GiB, MiB
from repro.workload.trace import Request


def make_service(scheduler, *, nodes=4, quota=GiB, chunk_max=256 * MiB):
    cluster = Cluster(
        nodes,
        quota,
        CostParameters(render_jitter=0.0),
        storage_spec=StorageSpec(bandwidth=100 * MiB, latency=0.01),
    )
    return VisualizationService(cluster, scheduler, chunk_max)


class TestImmediateScheduling:
    def test_job_completes_with_compositing(self):
        service = make_service(FCFSScheduler())
        ds = Dataset("ds", GiB)
        job = RenderJob(JobType.INTERACTIVE, ds, 0.0)
        service.submit(job)
        service.cluster.events.run()
        assert job.is_complete
        assert service.jobs_completed == 1
        composite = service.cluster.cost.composite_time(len(job.group_nodes()))
        assert job.finish_time == pytest.approx(
            job.last_task_finish() + composite
        )

    def test_collector_records(self):
        service = make_service(FCFSScheduler())
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        service.submit(job)
        service.cluster.events.run()
        (record,) = service.collector.records
        assert record.job_id == job.job_id
        assert record.task_count == 4
        assert record.cache_hits == 0
        assert record.finish == job.finish_time

    def test_scheduling_cost_measured(self):
        service = make_service(FCFSScheduler())
        service.submit(RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0))
        stats = service.collector.scheduling
        assert stats.invocations == 1
        assert stats.jobs_scheduled == 1
        assert stats.tasks_assigned == 4
        assert stats.total_seconds > 0


class TestCycleScheduling:
    def test_jobs_buffered_until_cycle(self):
        service = make_service(OursScheduler(cycle=0.015))
        events = service.cluster.events
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        service.submit(job)
        assert service.cluster.total_backlog() == 0  # nothing dispatched yet
        events.run(until=0.016)
        assert job.tasks  # decomposed and dispatched at the cycle
        events.run()
        assert job.is_complete

    def test_cycle_self_terminates(self):
        service = make_service(OursScheduler(cycle=0.015))
        events = service.cluster.events
        service.submit(RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0))
        events.run()
        assert len(events) == 0  # no perpetual cycle events
        assert not service.has_work()

    def test_cycle_rearms_on_new_submission(self):
        service = make_service(OursScheduler(cycle=0.015))
        events = service.cluster.events
        service.submit(RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0))
        events.run()
        t = events.now
        job2 = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), t)
        service.submit(job2)
        events.run()
        assert job2.is_complete

    def test_deferred_batch_eventually_runs(self):
        service = make_service(OursScheduler(cycle=0.015))
        events = service.cluster.events
        batch = RenderJob(JobType.BATCH, Dataset("cold", GiB), 0.0)
        service.submit(batch)
        events.run()
        assert batch.is_complete
        assert not service.has_work()


class TestWindowScheduling:
    def test_window_fills_and_flushes(self):
        service = make_service(SFScheduler(window_size=3, window_timeout=10.0))
        events = service.cluster.events
        jobs = [
            RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
            for _ in range(3)
        ]
        for j in jobs:
            service.submit(j)
        # The third submission fills the window → immediate flush.
        assert all(j.tasks for j in jobs)
        events.run()
        assert all(j.is_complete for j in jobs)

    def test_partial_window_flushes_on_timeout(self):
        service = make_service(SFScheduler(window_size=16, window_timeout=0.05))
        events = service.cluster.events
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        service.submit(job)
        assert not job.tasks
        events.run(until=0.051)
        assert job.tasks
        events.run()
        assert job.is_complete

    def test_stale_timeout_ignored_after_flush(self):
        service = make_service(SFScheduler(window_size=2, window_timeout=0.05))
        events = service.cluster.events
        j1 = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        j2 = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        service.submit(j1)
        service.submit(j2)  # fills window, flushes, timer becomes stale
        events.run()
        assert service.jobs_completed == 2


class TestPrewarm:
    def test_prewarm_fills_caches_and_mirrors(self):
        service = make_service(FCFSScheduler())
        datasets = dataset_suite(2, GiB)  # 8 chunks of 256 MiB
        loaded = service.prewarm(datasets)
        assert loaded == 8
        for k, node in enumerate(service.cluster.nodes):
            assert len(node.cache) == 2
            for chunk in node.cache.chunks():
                assert service.tables.is_cached(chunk, k)

    def test_prewarm_respects_quota(self):
        service = make_service(FCFSScheduler(), quota=512 * MiB)
        datasets = dataset_suite(4, GiB)  # 16 chunks but only 8 slots
        loaded = service.prewarm(datasets)
        assert loaded == 8
        for node in service.cluster.nodes:
            assert node.cache.used_bytes <= 512 * MiB

    def test_prewarm_uniform_pins_by_index(self):
        sched = FCFSUScheduler()
        service = make_service(sched)
        datasets = dataset_suite(1, GiB)
        service.prewarm(datasets)
        for k, node in enumerate(service.cluster.nodes):
            chunks = node.cache.chunks()
            assert len(chunks) == 1
            assert chunks[0].index == k

    def test_prewarmed_jobs_all_hit(self):
        service = make_service(FCFSScheduler())
        datasets = dataset_suite(2, GiB)
        service.prewarm(datasets)
        job = RenderJob(JobType.INTERACTIVE, datasets[0], 0.0)
        service.submit(job)
        service.cluster.events.run()
        assert all(t.cache_hit for t in job.tasks)

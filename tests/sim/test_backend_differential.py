"""Backend differential: the numpy SoA tables are bit-identical.

The struct-of-arrays fast path (``RunConfig(tables_backend="numpy")``)
re-implements the head-node tables — Available, cache residency,
Estimate — over dense numpy arrays with vectorized min-node selection.
That rewrite is only admissible because it is *bit-identical* to the
dict/list reference path: ``np.float64`` subclasses ``float`` and every
per-task update stays scalar IEEE-754 arithmetic, so only the
*selection* step is vectorized (``argmin`` shares ``min``'s
first-minimal tie order).

These tests pin the invariant exhaustively: every scenario x every
registered scheduler, the complete per-task assignment trace (hashed
via ``float.hex``, so the last bit matters) is identical across the
two backends.
"""

import pytest

from repro.core.registry import SCHEDULER_NAMES
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

#: Per-scenario smoke scales: large enough that every scheduler places
#: work through all its phases (scenario 1 completes no tasks below
#: 0.1), small enough for the tier-1 suite.
SCENARIO_SCALES = [(1, 0.1), (2, 0.1), (3, 0.02), (4, 0.01)]


def _trace_hash(number: int, scale: float, scheduler: str, backend: str) -> str:
    scenario = make_scenario(number, scale=scale)
    result = run_simulation(
        scenario,
        scheduler,
        RunConfig(record_assignments=True, tables_backend=backend),
    )
    assert result.assignment_trace, "trace must not be empty"
    return result.assignment_trace_hash()


class TestBackendDifferential:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
    @pytest.mark.parametrize(
        "number,scale", SCENARIO_SCALES, ids=lambda v: str(v)
    )
    def test_backends_hash_identically(self, number, scale, scheduler):
        python_hash = _trace_hash(number, scale, scheduler, "python")
        numpy_hash = _trace_hash(number, scale, scheduler, "numpy")
        assert python_hash == numpy_hash, (
            f"scenario {number} scale {scale} {scheduler}: numpy backend "
            "diverged from the python reference"
        )


class TestBackendConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="tables_backend"):
            RunConfig(tables_backend="fortran")

    def test_default_backend_is_python(self):
        assert RunConfig().tables_backend == "python"

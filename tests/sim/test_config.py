"""Tests for system configurations."""

import pytest

from repro.sim.config import SystemConfig, system_anl, system_linux8
from repro.util.units import GiB, MiB


class TestPresets:
    def test_linux8_matches_paper(self):
        cfg = system_linux8()
        assert cfg.node_count == 8
        assert cfg.memory_quota == 2 * GiB
        assert cfg.total_memory == 16 * GiB
        assert cfg.chunk_max == 512 * MiB
        assert cfg.gpu.video_memory == 1 * GiB  # GTX 285
        assert cfg.model_vram is False

    def test_anl_matches_paper(self):
        cfg = system_anl()
        assert cfg.node_count == 64
        assert cfg.memory_quota == 8 * GiB
        assert cfg.total_memory == 512 * GiB
        assert cfg.gpu.video_memory == int(1.5 * GiB)  # Quadro FX5600

    def test_anl_node_count_override(self):
        assert system_anl(node_count=16).node_count == 16

    def test_build_cluster(self):
        cluster = system_linux8().build_cluster()
        assert cluster.node_count == 8
        assert cluster.nodes[0].cache.capacity == 2 * GiB

    def test_with_overrides(self):
        cfg = system_linux8().with_overrides(node_count=4)
        assert cfg.node_count == 4
        assert cfg.memory_quota == 2 * GiB


class TestValidation:
    def test_chkmax_bounded_by_gpu_memory(self):
        """§III-C: Chkmax must not exceed graphics memory."""
        with pytest.raises(ValueError, match="video memory"):
            SystemConfig(
                name="bad",
                node_count=4,
                memory_quota=4 * GiB,
                chunk_max=2 * GiB,  # > 1 GiB default GPU
            )

    def test_chkmax_bounded_by_quota(self):
        from repro.cluster.gpu import GpuSpec

        with pytest.raises(ValueError, match="quota"):
            SystemConfig(
                name="bad",
                node_count=4,
                memory_quota=256 * MiB,
                chunk_max=512 * MiB,
                gpu=GpuSpec(video_memory=1 * GiB),
            )

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            SystemConfig(name="bad", node_count=0, memory_quota=GiB)

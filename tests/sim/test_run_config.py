"""Tests for RunConfig and the deprecated legacy-kwargs spelling."""

import pickle
import warnings

import pytest

from repro.frontend import FrontendConfig
from repro.sim.run_config import LEGACY_KWARGS, RunConfig
from repro.sim.simulator import run_simulation
from repro.sim.sweep import replicate, sweep
from repro.workload.scenarios import make_scenario


def fingerprint(result):
    return [
        (r.user, r.action, r.sequence, r.finish, r.latency)
        for r in result.collector.records
    ]


def scenario_factory(seed):
    return make_scenario(2, scale=0.02, seed=seed)


class TestRunConfig:
    def test_frozen_and_replace(self):
        config = RunConfig()
        with pytest.raises(AttributeError):
            config.drain = True
        assert config.replace(drain=True).drain is True
        assert config.drain is False

    def test_picklable_with_frontend(self):
        config = RunConfig(frontend=FrontendConfig.protective())
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_legacy_kwargs_enumerates_fields(self):
        assert "drain" in LEGACY_KWARGS
        assert "frontend" in LEGACY_KWARGS


class TestDeprecatedSpelling:
    def test_legacy_kwargs_warn_and_match_config(self):
        scenario = make_scenario(2, scale=0.02)
        via_config = run_simulation(
            scenario, "OURS", config=RunConfig(drain=True)
        )
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            via_kwargs = run_simulation(scenario, "OURS", drain=True)
        assert fingerprint(via_kwargs) == fingerprint(via_config)
        assert via_kwargs.jobs_completed == via_config.jobs_completed
        assert via_kwargs.interactive_fps == via_config.interactive_fps

    def test_config_plus_kwargs_rejected(self):
        scenario = make_scenario(2, scale=0.02)
        with pytest.raises(TypeError, match="not both"):
            run_simulation(
                scenario, "OURS", config=RunConfig(), drain=True
            )

    def test_unknown_kwarg_rejected(self):
        scenario = make_scenario(2, scale=0.02)
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_simulation(scenario, "OURS", dran=True)

    def test_no_warning_on_config_path(self):
        scenario = make_scenario(2, scale=0.02)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_simulation(scenario, "OURS", config=RunConfig())
            run_simulation(scenario, "OURS")

    def test_sweep_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="sweep"):
            sweep(
                "seed", [0], scenario_factory, ["OURS"], drain=True
            )

    def test_sweep_config_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            sweep(
                "seed",
                [0],
                scenario_factory,
                ["OURS"],
                config=RunConfig(),
                drain=True,
            )

    def test_replicate_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="replicate"):
            replicate(scenario_factory, "OURS", seeds=[0], drain=True)


class TestConfigThroughProcessPool:
    def test_replicate_parallel_parity_with_frontend(self):
        """A frontend-bearing RunConfig survives the workers=N path."""
        config = RunConfig(
            frontend=FrontendConfig.protective(max_sessions=4, queue_limit=16)
        )
        serial = replicate(
            scenario_factory, "OURS", seeds=[0, 1], config=config
        )
        parallel = replicate(
            scenario_factory, "OURS", seeds=[0, 1], workers=2, config=config
        )
        assert parallel.fps.values == serial.fps.values
        assert [r.jobs_completed for r in parallel.results] == [
            r.jobs_completed for r in serial.results
        ]
        for result in parallel.results:
            assert result.frontend is not None
            assert result.frontend.forwarded == result.jobs_submitted

"""Documentation quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this
meta-test enforces it mechanically — every public module, class,
function, and method reachable from the ``repro`` package must have a
non-trivial docstring.
"""

import importlib
import inspect
import pkgutil
import warnings

import pytest

import repro

MIN_DOC_LENGTH = 10


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.metrics":
            # The deprecated alias module warns at import time — and,
            # with its stacklevel fixed, the warning lands *here* and
            # would trip the error::DeprecationWarning filter.  The
            # warning itself is verified in tests/reporting/test_alias.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                yield importlib.import_module(info.name)
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if defined_here:
                yield name, obj


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) >= MIN_DOC_LENGTH, (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in public_members(module):
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < MIN_DOC_LENGTH:
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not callable(member):
                    continue
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__
                if not inspect.isfunction(member):
                    continue
                mdoc = inspect.getdoc(member)
                if not mdoc or len(mdoc.strip()) < MIN_DOC_LENGTH:
                    undocumented.append(f"{module.__name__}.{name}.{mname}")
    assert not undocumented, f"undocumented public items: {undocumented}"

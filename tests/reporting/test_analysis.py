"""Tests for evaluation analytics."""

import pytest

from repro.core.job import JobType
from repro.reporting.analysis import (
    LatencyStats,
    batch_working_time,
    delivered_framerates_by_action,
    framerates_by_action,
    latency_stats,
    mean_delivered_framerate,
    mean_interactive_framerate,
    summarize,
)
from repro.reporting.collectors import JobRecord


def rec(
    action=0,
    arrival=0.0,
    finish=1.0,
    job_type=JobType.INTERACTIVE,
    start=None,
    hits=4,
):
    return JobRecord(
        job_id=0,
        job_type=job_type,
        dataset="ds",
        user=0,
        action=action,
        sequence=0,
        arrival=arrival,
        start=arrival if start is None else start,
        finish=finish,
        task_count=4,
        cache_hits=hits,
        io_seconds=0.0,
        group_size=4,
    )


class TestDefinition4Framerates:
    def test_per_action(self):
        records = [rec(action=0, finish=0.03 * i) for i in range(1, 5)]
        records += [rec(action=1, finish=0.1 * i) for i in range(1, 4)]
        rates = framerates_by_action(records)
        assert rates[0] == pytest.approx(1 / 0.03)
        assert rates[1] == pytest.approx(1 / 0.1)

    def test_single_completion_scores_zero(self):
        rates = framerates_by_action([rec(action=0)])
        assert rates[0] == 0.0

    def test_batch_ignored(self):
        records = [rec(job_type=JobType.BATCH, finish=float(i)) for i in range(5)]
        assert framerates_by_action(records) == {}

    def test_mean(self):
        records = [rec(action=0, finish=0.03 * i) for i in range(1, 5)]
        records += [rec(action=1)]  # 0 fps
        expected = (1 / 0.03 + 0.0) / 2
        assert mean_interactive_framerate(records) == pytest.approx(expected)


class TestDeliveredFramerates:
    def test_full_delivery_matches_target(self):
        interval = 0.03
        issues = {0: (101, 0.0, 3.0)}
        records = [rec(action=0, arrival=i * interval) for i in range(101)]
        rates = delivered_framerates_by_action(records, issues, interval)
        assert rates[0] == pytest.approx(101 / 3.03)

    def test_burst_completion_not_rewarded(self):
        """5 frames delivered of a 3-second action is ~1.7 fps even if
        the five completions landed microseconds apart."""
        interval = 0.03
        issues = {0: (101, 0.0, 3.0)}
        records = [
            rec(action=0, arrival=i * interval, finish=50.0 + 1e-5 * i)
            for i in range(5)
        ]
        rates = delivered_framerates_by_action(records, issues, interval)
        assert rates[0] == pytest.approx(5 / 3.03)
        # Definition 4 on the same records would report a huge number.
        assert framerates_by_action(records)[0] > 1000

    def test_action_with_no_completions_scores_zero(self):
        issues = {0: (100, 0.0, 3.0), 1: (50, 0.0, 1.5)}
        records = [rec(action=0, arrival=0.0)]
        rates = delivered_framerates_by_action(records, issues, 0.03)
        assert rates[1] == 0.0

    def test_mean_delivered(self):
        issues = {0: (2, 0.0, 0.03), 1: (2, 0.0, 0.03)}
        records = [rec(action=0), rec(action=0, arrival=0.03)]
        mean_rate = mean_delivered_framerate(records, issues, 0.03)
        assert mean_rate == pytest.approx((2 / 0.06 + 0.0) / 2)


class TestLatencyStats:
    def test_of(self):
        stats = LatencyStats.of([1.0, 2.0, 3.0, 10.0])
        assert stats.count == 4
        assert stats.mean == 4.0
        assert stats.p50 == pytest.approx(2.5)
        assert stats.maximum == 10.0

    def test_empty(self):
        stats = LatencyStats.of([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_by_type(self):
        records = [
            rec(arrival=0.0, finish=2.0),
            rec(arrival=0.0, finish=4.0, job_type=JobType.BATCH),
        ]
        assert latency_stats(records, JobType.INTERACTIVE).mean == 2.0
        assert latency_stats(records, JobType.BATCH).mean == 4.0


class TestSummarize:
    def test_batch_working_time(self):
        records = [
            rec(job_type=JobType.BATCH, arrival=0.0, start=1.0, finish=3.0),
            rec(job_type=JobType.BATCH, arrival=0.0, start=2.0, finish=4.0),
        ]
        assert batch_working_time(records) == pytest.approx(2.0)

    def test_summary_row_renders(self):
        records = [rec(action=0, finish=0.03 * i) for i in range(1, 4)]
        summary = summarize("OURS", records, hit_rate=0.999, sched_cost_us=33.0)
        row = summary.row()
        assert "OURS" in row
        assert "99.90%" in row

    def test_summary_uses_delivered_when_issues_given(self):
        records = [rec(action=0, arrival=0.0, finish=50.0),
                   rec(action=0, arrival=0.03, finish=50.001)]
        issues = {0: (101, 0.0, 3.0)}
        with_issues = summarize(
            "X", records, hit_rate=1.0, sched_cost_us=0.0,
            action_issues=issues, frame_interval=0.03,
        )
        without = summarize("X", records, hit_rate=1.0, sched_cost_us=0.0)
        assert with_issues.interactive_fps < without.interactive_fps

"""Tests for report rendering."""

import pytest

from repro.reporting.analysis import SchedulerSummary
from repro.reporting.report import (
    comparison_table,
    hit_rate_table,
    pipeline_breakdown,
    sweep_table,
)


def summary(name="OURS", fps=33.3, hit=0.999, cost=33.0):
    return SchedulerSummary(
        scheduler=name,
        interactive_fps=fps,
        interactive_latency=0.04,
        batch_latency=1.5,
        batch_working_time=0.2,
        interactive_completed=100,
        batch_completed=10,
        hit_rate=hit,
        sched_cost_us=cost,
    )


class TestComparisonTable:
    def test_contains_rows_and_target(self):
        text = comparison_table(
            [summary("OURS"), summary("FCFS", fps=0.2)],
            title="Fig 4",
            target_fps=33.33,
        )
        assert "Fig 4" in text
        assert "33.33" in text
        assert "OURS" in text and "FCFS" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 2 + 2  # title, target, header, rule, 2 rows


class TestHitRateTable:
    def test_layout(self):
        rows = {
            "scenario1": {"FS": summary("FS", hit=0.08), "OURS": summary()},
            "scenario2": {"OURS": summary()},
        }
        text = hit_rate_table(rows, ["FS", "OURS"])
        assert "scenario1" in text
        assert "8.00%" in text
        assert "99.90%" in text
        # Missing cell renders as '-'.
        assert "-" in text


class TestSweepTable:
    def test_renders_series(self):
        text = sweep_table(
            "actions",
            [8, 16, 32],
            {"OURS": [1.0, 1.1, 1.2], "FCFSL": [2.0, 4.0, 8.0]},
            title="Fig 8",
        )
        assert "Fig 8" in text
        assert "OURS" in text and "FCFSL" in text
        assert len(text.splitlines()) == 1 + 2 + 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sweep_table("x", [1, 2], {"a": [1.0]})


class TestPipelineBreakdown:
    def test_shares_sum_and_format(self):
        text = pipeline_breakdown(5.0, 0.005, 0.002)
        assert "data I/O" in text
        assert "99.9" in text  # I/O dominates
        assert "total" in text

    def test_zero_total(self):
        text = pipeline_breakdown(0.0, 0.0, 0.0)
        assert "0.0" in text

"""Tests for timeline sampling and sparklines."""

import pytest

from repro.reporting.timeline import TimelineSampler, sparkline
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == "(empty)"

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert "min=5" in line and "max=5" in line

    def test_monotone_ramp(self):
        line = sparkline(list(range(10)), width=10)
        body = line.split("]")[0][1:]
        assert body[0] == " " and body[-1] == "@"

    def test_bucketing_long_series(self):
        line = sparkline(list(range(1000)), width=20)
        body = line.split("]")[0][1:]
        assert len(body) == 20

    def test_annotations(self):
        line = sparkline([1.0, 3.0, 2.0])
        assert "min=1" in line and "max=3" in line


class TestSamplerValidation:
    def test_interval_positive(self):
        with pytest.raises(ValueError):
            TimelineSampler(0.0)


class TestSamplerEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation(
            scenario_1(scale=0.1),
            "OURS",
            config=RunConfig(timeline_interval=0.25),
        )

    def test_sample_count_matches_duration(self, result):
        # 6 s horizon / 0.25 s ≈ 24 samples (+/- the final tick).
        assert 20 <= len(result.timeline_samples.samples) <= 27

    def test_times_monotone(self, result):
        times = result.timeline_samples.series("time")
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_jobs_completed_monotone(self, result):
        completed = result.timeline_samples.series("jobs_completed")
        assert all(b >= a for a, b in zip(completed, completed[1:]))

    def test_busy_nodes_bounded(self, result):
        busy = result.timeline_samples.series("busy_nodes")
        assert all(0 <= b <= 8 for b in busy)

    def test_completion_rate_length(self, result):
        rates = result.timeline_samples.completion_rate()
        assert len(rates) == len(result.timeline_samples.samples) - 1
        assert all(r >= 0 for r in rates)

    def test_sampler_does_not_prolong_simulation(self):
        with_tl = run_simulation(
            scenario_1(scale=0.05),
            "OURS",
            config=RunConfig(drain=True, timeline_interval=0.2),
        )
        without = run_simulation(
            scenario_1(scale=0.05), "OURS", config=RunConfig(drain=True)
        )
        assert with_tl.jobs_completed == without.jobs_completed
        # The sampler stops within one interval of quiescence.
        assert with_tl.simulated_time <= without.simulated_time + 0.2 + 1e-9

    def test_no_timeline_by_default(self):
        result = run_simulation(scenario_1(scale=0.05), "OURS")
        assert result.timeline_samples is None

"""Tests for the deprecated ``repro.metrics`` → ``repro.reporting`` alias."""

import importlib
import sys

import pytest


def _forget_alias():
    for name in [
        m
        for m in sys.modules
        if m == "repro.metrics" or m.startswith("repro.metrics.")
    ]:
        del sys.modules[name]


class TestDeprecatedAlias:
    def test_import_warns_once_and_reexports(self):
        _forget_alias()
        with pytest.warns(DeprecationWarning, match="repro.reporting"):
            alias = importlib.import_module("repro.metrics")
        reporting = importlib.import_module("repro.reporting")
        # Same objects, not copies: downstream isinstance checks hold.
        for name in reporting.__all__:
            assert getattr(alias, name) is getattr(reporting, name)

    def test_submodule_imports_resolve(self):
        _forget_alias()
        with pytest.warns(DeprecationWarning):
            importlib.import_module("repro.metrics")
        from repro.metrics.collectors import SimulationCollector
        from repro.reporting.collectors import (
            SimulationCollector as Canonical,
        )

        assert SimulationCollector is Canonical
        assert (
            sys.modules["repro.metrics.analysis"]
            is sys.modules["repro.reporting.analysis"]
        )

    def test_warning_attributed_to_importing_module(self):
        """The shim's warning must point at the *importer*, not at the
        import machinery — otherwise per-module warning filters (like
        this suite's ``error::DeprecationWarning`` first-party config)
        never match it and the deprecation goes unseen."""
        import warnings

        _forget_alias()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.metrics")
        deprecations = [
            w
            for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "repro.reporting" in str(w.message)
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_import_errors_under_first_party_error_filter(self):
        """Exercised the way the suite config would see it: with
        DeprecationWarning escalated to an error for this module, the
        alias import must raise (proof the warning is attributed where
        the filter can match it)."""
        import warnings

        _forget_alias()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="repro.reporting"):
                importlib.import_module("repro.metrics")
        # The failed import must not leave a half-initialized module
        # cached (Python drops it on exception; pin that).
        assert "repro.metrics" not in sys.modules

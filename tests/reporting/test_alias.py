"""Tests for the deprecated ``repro.metrics`` → ``repro.reporting`` alias."""

import importlib
import sys

import pytest


def _forget_alias():
    for name in [
        m
        for m in sys.modules
        if m == "repro.metrics" or m.startswith("repro.metrics.")
    ]:
        del sys.modules[name]


class TestDeprecatedAlias:
    def test_import_warns_once_and_reexports(self):
        _forget_alias()
        with pytest.warns(DeprecationWarning, match="repro.reporting"):
            alias = importlib.import_module("repro.metrics")
        reporting = importlib.import_module("repro.reporting")
        # Same objects, not copies: downstream isinstance checks hold.
        for name in reporting.__all__:
            assert getattr(alias, name) is getattr(reporting, name)

    def test_submodule_imports_resolve(self):
        _forget_alias()
        with pytest.warns(DeprecationWarning):
            importlib.import_module("repro.metrics")
        from repro.metrics.collectors import SimulationCollector
        from repro.reporting.collectors import (
            SimulationCollector as Canonical,
        )

        assert SimulationCollector is Canonical
        assert (
            sys.modules["repro.metrics.analysis"]
            is sys.modules["repro.reporting.analysis"]
        )

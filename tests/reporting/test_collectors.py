"""Tests for measurement collection."""

import pytest

from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.reporting.collectors import (
    JobRecord,
    SchedulingCostStats,
    SimulationCollector,
)
from repro.util.units import GiB, MiB

POLICY = ChunkedDecomposition(512 * MiB)


def finished_job(job_type=JobType.INTERACTIVE, action=0, arrival=0.0):
    job = RenderJob(job_type, Dataset("ds", GiB), arrival, action=action)
    for i, t in enumerate(job.decompose(POLICY)):
        t.node = i % 2
        t.start_time = arrival + 0.1
        t.finish_time = arrival + 0.2
        t.cache_hit = i == 0
        t.io_time = 0.0 if i == 0 else 0.05
    job.finish_time = arrival + 0.21
    return job


class TestJobRecord:
    def test_derived_metrics(self):
        rec = JobRecord(
            job_id=1,
            job_type=JobType.BATCH,
            dataset="ds",
            user=0,
            action=0,
            sequence=0,
            arrival=1.0,
            start=2.0,
            finish=5.0,
            task_count=4,
            cache_hits=3,
            io_seconds=2.0,
            group_size=2,
        )
        assert rec.latency == 4.0
        assert rec.execution == 3.0
        assert rec.cache_misses == 1


class TestSchedulingCostStats:
    def test_means(self):
        stats = SchedulingCostStats()
        stats.record(0.002, jobs=2, tasks=8)
        stats.record(0.001, jobs=1, tasks=4)
        assert stats.invocations == 2
        assert stats.mean_cost_per_job == pytest.approx(0.001)
        assert stats.mean_cost_per_job_us == pytest.approx(1000.0)
        assert stats.mean_cost_per_invocation == pytest.approx(0.0015)

    def test_empty(self):
        stats = SchedulingCostStats()
        assert stats.mean_cost_per_job == 0.0
        assert stats.mean_cost_per_invocation == 0.0


class TestCollector:
    def test_job_completion_record(self):
        collector = SimulationCollector()
        job = finished_job()
        collector.on_submit(job)
        collector.on_job_complete(job)
        (rec,) = collector.records
        assert rec.cache_hits == 1
        assert rec.task_count == 2
        assert rec.io_seconds == pytest.approx(0.05)
        assert rec.group_size == 2
        assert collector.hit_rate == pytest.approx(0.5)

    def test_interactive_issue_tracking(self):
        collector = SimulationCollector()
        for i in range(3):
            job = RenderJob(
                JobType.INTERACTIVE, Dataset("ds", GiB), 0.1 * i, action=7
            )
            collector.on_submit(job)
        batch = RenderJob(JobType.BATCH, Dataset("ds", GiB), 0.5, action=9)
        collector.on_submit(batch)
        assert set(collector.action_issues) == {7}
        count, first, last = collector.action_issues[7]
        assert count == 3
        assert first == 0.0
        assert last == pytest.approx(0.2)

    def test_split_by_type(self):
        collector = SimulationCollector()
        a = finished_job(JobType.INTERACTIVE)
        b = finished_job(JobType.BATCH)
        collector.on_job_complete(a)
        collector.on_job_complete(b)
        assert len(collector.interactive_records()) == 1
        assert len(collector.batch_records()) == 1
        assert collector.jobs_completed == 2

    def test_hit_rate_empty(self):
        assert SimulationCollector().hit_rate == 0.0

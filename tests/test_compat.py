"""Tests for the single deprecation funnel (``repro._compat``).

Each legacy surface has behavioural tests next to the subsystem it
shims (``tests/sim/test_run_config.py``, ``tests/reporting/
test_alias.py``); this module pins the funnel itself: one helper, one
warning category, caller-attributed stack levels, and all three shims
actually routed through it.
"""

import warnings

import pytest

from repro._compat import warn_deprecated


class TestWarnDeprecated:
    def test_category_and_message(self):
        with pytest.warns(DeprecationWarning, match="gone in 2.0"):
            warn_deprecated("gone in 2.0", stacklevel=1)

    def test_attributed_to_caller_not_funnel(self):
        """stacklevel counts from the caller, as if it called
        ``warnings.warn`` itself — the funnel frame must not show."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_deprecated("x", stacklevel=1)
        assert caught[0].filename == __file__

    def test_extra_level_skips_one_caller_frame(self):
        def shim():
            warn_deprecated("x", stacklevel=2)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim()
        # stacklevel=2 attributes past ``shim`` to this test's frame —
        # still this file, but pinning it exercises the +1 arithmetic.
        assert caught[0].filename == __file__


class TestShimsRouteThroughFunnel:
    """All three legacy surfaces warn via the funnel (one category,
    caller attribution); removal means deleting ``repro._compat`` and
    watching these fail."""

    def test_legacy_run_simulation_kwargs(self):
        from repro.sim.simulator import run_simulation
        from repro.workload.scenarios import make_scenario

        scenario = make_scenario(1, scale=0.02)
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            run_simulation(scenario, "OURS", drain=True)

    def test_node_failures_pairs(self):
        from repro.sim.run_config import RunConfig

        with pytest.warns(DeprecationWarning, match="node_failures"):
            config = RunConfig(node_failures=[(1.0, 2)])
        assert config.faults is not None
        assert config.node_failures is None

    def test_metrics_alias_import(self):
        import importlib
        import sys

        for name in [
            m
            for m in sys.modules
            if m == "repro.metrics" or m.startswith("repro.metrics.")
        ]:
            del sys.modules[name]
        with pytest.warns(DeprecationWarning, match="repro.reporting"):
            importlib.import_module("repro.metrics")

"""Fault-plan layer: validation, mini-language parsing, seeded storms."""

import pytest

from repro.faults import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    NodeCrash,
    RecoveryConfig,
    StorageDegrade,
    Straggler,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            NodeCrash(-1.0, 0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node must be >= 0"):
            NodeCrash(1.0, -2)

    def test_revive_must_follow_crash(self):
        with pytest.raises(ValueError, match="revive_at"):
            NodeCrash(5.0, 0, revive_at=5.0)

    def test_straggler_factors_below_one_rejected(self):
        with pytest.raises(ValueError, match="factors must be >= 1.0"):
            Straggler(1.0, 0, render_factor=0.5)
        with pytest.raises(ValueError, match="factors must be >= 1.0"):
            Straggler(1.0, 0, io_factor=0.9)

    def test_straggler_until_must_follow_onset(self):
        with pytest.raises(ValueError, match="until"):
            Straggler(3.0, 0, until=2.0)

    def test_wipe_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node must be >= 0"):
            CacheWipe(1.0, node=-1)

    def test_storage_factor_ranges(self):
        with pytest.raises(ValueError, match="latency_factor"):
            StorageDegrade(1.0, latency_factor=0.5)
        with pytest.raises(ValueError, match="bandwidth_factor"):
            StorageDegrade(1.0, bandwidth_factor=0.0)
        with pytest.raises(ValueError, match="bandwidth_factor"):
            StorageDegrade(1.0, bandwidth_factor=1.5)

    def test_detection_config_validation(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            DetectionConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            DetectionConfig(heartbeat_interval=0.2, heartbeat_timeout=0.1)
        with pytest.raises(ValueError, match="outlier_ratio"):
            DetectionConfig(outlier_ratio=1.0)

    def test_recovery_config_validation(self):
        with pytest.raises(ValueError, match="rewarm_limit"):
            RecoveryConfig(rewarm_limit=-1)

    def test_plan_rejects_non_events(self):
        with pytest.raises(TypeError, match="fault events must be"):
            FaultPlan(events=("crash@1",))

    def test_recovery_requires_detection(self):
        with pytest.raises(ValueError, match="recovery requires detection"):
            FaultPlan(events=(), recovery=RecoveryConfig())


class TestPlanModes:
    def test_raw_plan_is_vanilla(self):
        plan = FaultPlan(events=(NodeCrash(1.0, 0),))
        assert plan.detection is None
        assert plan.recovery is None
        assert not plan.self_healing

    def test_detect_only_is_not_self_healing(self):
        plan = FaultPlan(
            events=(NodeCrash(1.0, 0),), detection=DetectionConfig()
        )
        assert not plan.self_healing
        assert "detect-only" in plan.describe()

    def test_self_healing_needs_both_configs(self):
        plan = FaultPlan(
            events=(NodeCrash(1.0, 0),),
            detection=DetectionConfig(),
            recovery=RecoveryConfig(),
        )
        assert plan.self_healing
        assert "self-healing" in plan.describe()

    def test_max_node(self):
        plan = FaultPlan(
            events=(
                NodeCrash(1.0, 2),
                Straggler(2.0, 5),
                StorageDegrade(3.0, latency_factor=2.0),
            )
        )
        assert plan.max_node() == 5
        assert FaultPlan().max_node() == -1

    def test_describe_lists_every_event(self):
        plan = FaultPlan.parse(
            "crash@10:node=3,revive=20; wipe@8:node=1", heal=False
        )
        text = plan.describe()
        assert "crash@10" in text
        assert "wipe@8" in text
        assert "vanilla" in text


class TestParse:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "crash@10:node=3,revive=20;"
            "straggler@5:node=2,render=4,io=2,until=15;"
            "wipe@8:dataset=ds2;"
            "storage@6:latency=5,bw=0.25,until=12"
        )
        crash, straggler, wipe, storage = plan.events
        assert crash == NodeCrash(10.0, 3, revive_at=20.0)
        assert straggler == Straggler(
            5.0, 2, render_factor=4.0, io_factor=2.0, until=15.0
        )
        assert wipe == CacheWipe(8.0, dataset="ds2")
        assert storage == StorageDegrade(
            6.0, latency_factor=5.0, bandwidth_factor=0.25, until=12.0
        )
        assert plan.self_healing  # heal=True is the parse default

    def test_heal_false_yields_vanilla(self):
        plan = FaultPlan.parse("crash@1:node=0", heal=False)
        assert plan.detection is None and plan.recovery is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meteor@1:node=0")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown crash option"):
            FaultPlan.parse("crash@1:node=0,sverity=9")

    def test_missing_required_option_rejected(self):
        with pytest.raises(ValueError, match="missing required option"):
            FaultPlan.parse("crash@1")

    def test_bad_time_rejected(self):
        with pytest.raises(ValueError, match="bad fault time"):
            FaultPlan.parse("crash@soon:node=0")

    def test_bad_option_syntax_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.parse("crash@1:node")

    def test_empty_segments_ignored(self):
        plan = FaultPlan.parse("crash@1:node=0; ; ")
        assert len(plan.events) == 1


class TestStorm:
    def test_same_seed_same_plan(self):
        first = FaultPlan.storm(11, node_count=8, duration=60.0)
        second = FaultPlan.storm(11, node_count=8, duration=60.0)
        assert first == second

    def test_different_seeds_differ(self):
        first = FaultPlan.storm(11, node_count=8, duration=60.0)
        second = FaultPlan.storm(12, node_count=8, duration=60.0)
        assert first != second

    def test_storm_shape(self):
        plan = FaultPlan.storm(7, node_count=8, duration=60.0)
        kinds = sorted(event.kind for event in plan.events)
        assert kinds == ["crash", "storage", "straggler", "wipe"]
        assert all(0.0 <= event.time <= 60.0 for event in plan.events)
        assert plan.max_node() < 8
        assert plan.self_healing

    def test_storm_validation(self):
        with pytest.raises(ValueError, match="storm needs >= 2 nodes"):
            FaultPlan.storm(1, node_count=1, duration=10.0)
        with pytest.raises(ValueError, match="duration must be > 0"):
            FaultPlan.storm(1, node_count=4, duration=0.0)


class TestFromNodeFailures:
    def test_pairs_become_vanilla_crashes(self):
        plan = FaultPlan.from_node_failures([(2.0, 1), (4.0, 3)])
        assert plan.events == (NodeCrash(2.0, 1), NodeCrash(4.0, 3))
        assert not plan.self_healing

"""Self-healing recovery: conservation, Definition-3 sums, bit-identity.

The hard guarantees of the recovery layer: no submitted job is lost
under any single-fault plan (every stranded task is re-placed), the
causal phase decomposition still sums exactly to each job's latency even
for re-executed tasks, and runs without faults stay bit-identical to a
simulator that predates the subsystem.
"""

import math

import pytest

from repro.faults import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    NodeCrash,
    RecoveryConfig,
    Straggler,
)
from repro.obs import AuditConfig
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

SCALE = 0.05


def healed(*events) -> FaultPlan:
    """A self-healing plan around the given events (default configs)."""
    return FaultPlan(
        events=tuple(events),
        detection=DetectionConfig(),
        recovery=RecoveryConfig(),
    )


def run_with(plan, *, scheduler="OURS", number=1, audit=True):
    scenario = make_scenario(number, scale=SCALE)
    config = RunConfig(
        drain=True,
        audit=AuditConfig(capacity=None) if audit else False,
        faults=plan,
    )
    return run_simulation(scenario, scheduler, config)


SINGLE_FAULT_PLANS = {
    "crash": healed(NodeCrash(1.0, 2, revive_at=2.2)),
    "straggler": healed(Straggler(1.0, 3, render_factor=6.0)),
    "wipe": healed(CacheWipe(2.0, node=1)),
}


class TestConservation:
    @pytest.mark.parametrize("kind", sorted(SINGLE_FAULT_PLANS))
    def test_no_job_lost_under_single_fault(self, kind):
        result = run_with(SINGLE_FAULT_PLANS[kind])
        report = result.fault_report
        assert report is not None
        assert report.events_injected == 1
        assert report.jobs_completed == report.jobs_submitted
        assert report.jobs_lost == 0

    def test_crash_requeues_orphans(self):
        result = run_with(SINGLE_FAULT_PLANS["crash"])
        report = result.fault_report
        assert report.tasks_requeued() > 0
        assert "requeue-crash" in report.action_counts()

    def test_vanilla_crash_still_conserves(self):
        """No detection: the legacy instantly-aware §VI-D path."""
        result = run_with(FaultPlan(events=(NodeCrash(1.0, 2),)))
        report = result.fault_report
        assert report.jobs_lost == 0
        assert not report.detections
        assert not report.actions


class TestDefinitionThree:
    def test_phase_sums_hold_for_reexecuted_tasks(self):
        """Definition 3 must survive re-execution: every completed job's
        phase decomposition still sums exactly to its latency, including
        the jobs whose bounding task was requeued after the crash."""
        result = run_with(SINGLE_FAULT_PLANS["crash"])
        assert result.fault_report.tasks_requeued() > 0
        paths = result.critical_paths.paths
        assert len(paths) == result.jobs_completed
        for path in paths:
            total = sum(path.phase_values().values())
            assert math.isclose(total, path.latency, rel_tol=0, abs_tol=1e-9)


class TestBitIdentity:
    def _trace_hash(self, config):
        scenario = make_scenario(1, scale=0.1)
        result = run_simulation(scenario, "OURS", config)
        return result.assignment_trace_hash()

    def test_faults_none_matches_plain_run(self):
        baseline = self._trace_hash(RunConfig(record_assignments=True))
        with_field = self._trace_hash(
            RunConfig(record_assignments=True, faults=None)
        )
        assert baseline == with_field

    def test_empty_plan_matches_plain_run(self):
        """Arming the injector with zero events must not perturb the
        event queue: the golden trace is bit-identical."""
        baseline = self._trace_hash(RunConfig(record_assignments=True))
        armed = self._trace_hash(
            RunConfig(record_assignments=True, faults=FaultPlan())
        )
        assert baseline == armed

    def test_legacy_node_failures_parity(self):
        """The deprecation shim is bit-identical to the explicit plan."""
        failures = [(1.0, 2)]
        with pytest.warns(DeprecationWarning, match="node_failures"):
            legacy = self._trace_hash(
                RunConfig(record_assignments=True, node_failures=failures)
            )
        explicit = self._trace_hash(
            RunConfig(
                record_assignments=True,
                faults=FaultPlan.from_node_failures(failures),
            )
        )
        assert legacy == explicit

    def test_node_failures_and_faults_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            RunConfig(
                node_failures=[(1.0, 0)],
                faults=FaultPlan.from_node_failures([(1.0, 0)]),
            )

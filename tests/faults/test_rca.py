"""Root-cause analysis: localize injected faults from evidence alone.

The analyzer sees only what a real operator would have — the decision
audit log, the per-job critical paths, and SLO violation windows — never
the fault plan.  ``score`` then grades its verdicts against the plan as
ground truth.  These tests pin the acceptance bar: a single injected
crash is localized to the right node on more than one scenario, and the
straggler/wipe detectors' evidence chains name the right node too.
"""

import pytest

from repro.faults import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    NodeCrash,
    RecoveryConfig,
    Straggler,
    analyze,
    score,
)
from repro.obs import AuditConfig
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

SCALE = 0.05
#: Onset grading tolerance: detection latency is bounded below by one
#: task duration (a multi-second reload), so ±2 s is the honest bar.
TOLERANCE = 2.0


def healed(*events) -> FaultPlan:
    return FaultPlan(
        events=tuple(events),
        detection=DetectionConfig(),
        recovery=RecoveryConfig(),
    )


def localize(plan, *, number=1):
    """Run the plan, then analyze from audit + paths alone."""
    scenario = make_scenario(number, scale=SCALE)
    result = run_simulation(
        scenario,
        "OURS",
        RunConfig(drain=True, audit=AuditConfig(capacity=None), faults=plan),
    )
    report = analyze(
        result.audit,
        result.critical_paths.paths,
        [],
        node_count=scenario.system.node_count,
    )
    return report, score(report, plan, time_tolerance=TOLERANCE)


class TestCrashLocalization:
    @pytest.mark.parametrize("number", [1, 2])
    def test_crash_localized_on_scenario(self, number):
        plan = healed(NodeCrash(1.0, 2, revive_at=2.2))
        report, grade = localize(plan, number=number)
        assert grade["recall"] == 1.0
        assert grade["false_positives"] == 0
        verdict = report.verdicts[0]
        assert verdict.kind == "crash"
        assert verdict.node == 2

    def test_vanilla_crash_localized_from_fallback_bursts(self):
        """Even without detection audit rows, the permanent loss of a
        node shows up as fallback re-placements + disappearance."""
        plan = FaultPlan(events=(NodeCrash(1.0, 2),))
        report, grade = localize(plan)
        assert grade["recall"] == 1.0
        assert report.verdicts[0].node == 2


class TestStragglerAndWipeLocalization:
    def test_straggler_localized(self):
        plan = healed(Straggler(1.0, 3, render_factor=6.0))
        report, grade = localize(plan)
        assert grade["recall"] == 1.0
        assert grade["false_positives"] == 0
        verdict = report.verdicts[0]
        assert verdict.kind == "straggler"
        assert verdict.node == 3

    def test_wipe_localized(self):
        plan = healed(CacheWipe(2.0, node=1))
        report, grade = localize(plan)
        assert grade["recall"] == 1.0
        assert grade["false_positives"] == 0
        verdict = report.verdicts[0]
        assert verdict.kind == "wipe"
        assert verdict.node == 1


class TestReportShape:
    def test_no_faults_no_verdicts(self):
        report, _ = localize(healed())
        assert not report.verdicts

    def test_verdicts_carry_evidence(self):
        plan = healed(NodeCrash(1.0, 2, revive_at=2.2))
        report, _ = localize(plan)
        verdict = report.verdicts[0]
        assert verdict.evidence
        assert 0.0 < verdict.confidence <= 1.0
        assert verdict.onset >= 0.0

    def test_report_round_trips_to_dict(self):
        plan = healed(NodeCrash(1.0, 2, revive_at=2.2))
        report, _ = localize(plan)
        payload = report.to_dict()
        assert payload["verdicts"][0]["kind"] == "crash"
        assert payload["verdicts"][0]["node"] == 2

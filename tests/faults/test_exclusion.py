"""The all-excluded fault path of ``min_node_excluding``.

During a fault storm (every node crashed or quarantined at once) the
recovery layer probes for a min-available node with the entire cluster
excluded.  The views must answer ``None`` — and answer it in
O(len(excluded)) membership checks, without scanning the availability
table at all: the probe runs inside the detection loop, and a full-width
scan per probe turned storms quadratic.
"""

import numpy as np
import pytest

from repro.core.tables import (
    ArgminAvailability,
    MinScanAvailability,
    NodeAvailabilityHeap,
)


class CountingList(list):
    """Availability table that counts element reads."""

    def __init__(self, values):
        super().__init__(values)
        self.reads = 0

    def __getitem__(self, index):
        self.reads += 1
        return super().__getitem__(index)


def make_views(available):
    arr = np.asarray(list(available), dtype=np.float64)
    return [
        MinScanAvailability(available),
        NodeAvailabilityHeap(available),
        ArgminAvailability(arr),
    ]


class TestAllExcluded:
    @pytest.mark.parametrize("p", [1, 4, 64])
    def test_every_view_returns_none(self, p):
        available = [float(k) for k in range(p)]
        for view in make_views(available):
            assert view.min_node_excluding(set(range(p))) is None, view

    def test_superset_exclusion_returns_none(self):
        """Excluded sets may contain ids beyond the cluster (stale
        federation entries); they must not mask the all-excluded case."""
        available = [0.0, 1.0, 2.0]
        excluded = {0, 1, 2, 7, 99}
        for view in make_views(available):
            assert view.min_node_excluding(excluded) is None, view

    def test_all_excluded_never_reads_the_table(self):
        """O(len(excluded)): the decision is membership checks only."""
        p = 64
        available = CountingList(float(k) for k in range(p))
        scan = MinScanAvailability(available)
        heap = NodeAvailabilityHeap(available)
        available.reads = 0  # heap construction reads are irrelevant
        excluded = set(range(p))
        assert scan.min_node_excluding(excluded) is None
        assert heap.min_node_excluding(excluded) is None
        assert available.reads == 0

    def test_one_survivor_is_found(self):
        p = 16
        available = [float(k) for k in range(p)]
        excluded = set(range(p)) - {11}
        for view in make_views(available):
            assert view.min_node_excluding(excluded) == 11, view

    def test_all_infinite_prefers_first_non_excluded(self):
        """Every candidate crashed (available = +inf): the probe still
        names a slot, in the same (time, node) order the heap uses."""
        inf = float("inf")
        available = [inf, inf, inf, inf]
        for view in make_views(available):
            assert view.min_node_excluding({0, 2}) == 1, view

"""Tests for workload traces."""

import pytest

from repro.core.chunks import Dataset
from repro.core.job import JobType
from repro.util.units import GiB
from repro.workload.trace import Request, WorkloadTrace, merge_traces


def req(t, ds="a", jt=JobType.INTERACTIVE, action=0, seq=0, user=0):
    return Request(
        time=t, job_type=jt, dataset=ds, user=user, action=action, sequence=seq
    )


def make_trace(requests, datasets=None, **kw):
    if datasets is None:
        datasets = [Dataset("a", GiB), Dataset("b", GiB)]
    return WorkloadTrace(
        requests=requests, datasets=datasets, duration=10.0, **kw
    )


class TestTrace:
    def test_sorted_by_time(self):
        trace = make_trace([req(2.0), req(1.0), req(3.0)])
        assert [r.time for r in trace.requests] == [1.0, 2.0, 3.0]

    def test_counts(self):
        trace = make_trace(
            [
                req(0.0, action=0),
                req(0.1, action=1),
                req(0.2, jt=JobType.BATCH, action=2),
            ]
        )
        assert trace.interactive_count == 2
        assert trace.batch_count == 1
        assert trace.action_count == 2

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_trace([req(0.0, ds="zz")])

    def test_duplicate_dataset_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_trace([], datasets=[Dataset("a", 1), Dataset("a", 2)])

    def test_dataset_by_name(self):
        trace = make_trace([])
        assert trace.dataset_by_name("a").size == GiB
        with pytest.raises(KeyError):
            trace.dataset_by_name("zz")

    def test_summary_mentions_counts(self):
        trace = make_trace([req(0.0), req(0.1, jt=JobType.BATCH)])
        s = trace.summary()
        assert "1 batch" in s and "1 interactive" in s


class TestSerialization:
    def test_roundtrip(self):
        trace = make_trace(
            [req(0.5, action=3, seq=7, user=2), req(1.0, jt=JobType.BATCH)],
            name="t",
        )
        restored = WorkloadTrace.from_json(trace.to_json())
        assert restored.name == trace.name
        assert restored.duration == trace.duration
        assert restored.requests == trace.requests
        assert restored.datasets == trace.datasets


class TestMerge:
    def test_merge_unions_datasets_and_sorts(self):
        t1 = make_trace([req(2.0)], datasets=[Dataset("a", GiB)])
        t2 = WorkloadTrace(
            requests=[req(1.0, ds="b", jt=JobType.BATCH)],
            datasets=[Dataset("b", 2 * GiB)],
            duration=20.0,
        )
        merged = merge_traces([t1, t2])
        assert {d.name for d in merged.datasets} == {"a", "b"}
        assert merged.duration == 20.0
        assert [r.time for r in merged.requests] == [1.0, 2.0]

    def test_conflicting_sizes_rejected(self):
        t1 = make_trace([], datasets=[Dataset("a", 1)])
        t2 = make_trace([], datasets=[Dataset("a", 2)])
        with pytest.raises(ValueError, match="conflicting"):
            merge_traces([t1, t2])

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

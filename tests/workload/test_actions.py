"""Tests for interactive action stream generation."""

import numpy as np
import pytest

from repro.core.chunks import dataset_suite
from repro.core.job import JobType
from repro.util.units import GiB
from repro.workload.actions import (
    UserAction,
    expected_interactive_jobs,
    persistent_actions,
    poisson_action_stream,
)


class TestUserAction:
    def test_request_count_and_spacing(self):
        action = UserAction(0, 0, "ds", start=0.0, duration=3.0, interval=0.03)
        reqs = action.requests()
        assert len(reqs) == 101  # floor(3/0.03)+1 with endpoint excluded
        assert reqs[0].time == 0.0
        assert reqs[1].time == pytest.approx(0.03)
        assert all(r.job_type is JobType.INTERACTIVE for r in reqs)
        assert [r.sequence for r in reqs] == list(range(101))

    def test_duration_shorter_than_interval(self):
        action = UserAction(0, 0, "ds", start=1.0, duration=0.01, interval=0.03)
        reqs = action.requests()
        assert len(reqs) == 1
        assert reqs[0].time == 1.0

    def test_jitter_requires_rng(self):
        action = UserAction(0, 0, "ds", start=0.0, duration=1.0, interval=0.03)
        with pytest.raises(ValueError, match="rng"):
            action.requests(jitter=0.1)

    def test_jitter_bounds_validated(self):
        action = UserAction(0, 0, "ds", start=0.0, duration=1.0, interval=0.03)
        with pytest.raises(ValueError):
            action.requests(jitter=0.5, rng=np.random.default_rng(0))

    def test_jitter_preserves_count_and_order(self):
        action = UserAction(0, 0, "ds", start=0.0, duration=3.0, interval=0.03)
        plain = action.requests()
        jittered = action.requests(jitter=0.25, rng=np.random.default_rng(0))
        assert len(jittered) == len(plain)
        times = [r.time for r in jittered]
        assert times == sorted(times)
        for p, j in zip(plain, jittered):
            assert abs(j.time - p.time) <= 0.25 * 0.03 + 1e-12

    def test_first_request_unjittered(self):
        action = UserAction(0, 0, "ds", start=5.0, duration=1.0, interval=0.03)
        jittered = action.requests(jitter=0.25, rng=np.random.default_rng(0))
        assert jittered[0].time == 5.0


class TestPersistentActions:
    def test_scenario1_counts(self):
        """6 datasets x 60 s at 33.33 fps → the paper's 12 006 jobs."""
        datasets = dataset_suite(6, 2 * GiB)
        trace = persistent_actions(datasets, 60.0, target_framerate=100.0 / 3.0)
        assert trace.interactive_count == 12006
        assert trace.batch_count == 0
        assert trace.action_count == 6

    def test_one_action_per_dataset(self):
        datasets = dataset_suite(3, GiB)
        trace = persistent_actions(datasets, 1.0)
        by_action = {}
        for r in trace.requests:
            by_action.setdefault(r.action, set()).add(r.dataset)
        assert all(len(ds) == 1 for ds in by_action.values())
        assert {next(iter(ds)) for ds in by_action.values()} == {
            d.name for d in datasets
        }

    def test_seed_reproducible(self):
        datasets = dataset_suite(2, GiB)
        t1 = persistent_actions(datasets, 2.0, seed=9)
        t2 = persistent_actions(datasets, 2.0, seed=9)
        assert t1.requests == t2.requests


class TestPoissonActionStream:
    def test_reproducible(self):
        datasets = dataset_suite(4, GiB)
        t1 = poisson_action_stream(
            datasets, 10.0, arrival_rate=1.0, mean_action_duration=2.0, seed=3
        )
        t2 = poisson_action_stream(
            datasets, 10.0, arrival_rate=1.0, mean_action_duration=2.0, seed=3
        )
        assert t1.requests == t2.requests

    def test_count_close_to_expectation(self):
        datasets = dataset_suite(4, GiB)
        trace = poisson_action_stream(
            datasets,
            200.0,
            arrival_rate=2.0,
            mean_action_duration=2.0,
            target_framerate=33.33,
            seed=0,
        )
        expected = expected_interactive_jobs(200.0, 2.0, 2.0, 33.33)
        assert 0.6 * expected < trace.interactive_count < 1.4 * expected

    def test_requests_within_horizon(self):
        datasets = dataset_suite(2, GiB)
        trace = poisson_action_stream(
            datasets, 5.0, arrival_rate=3.0, mean_action_duration=10.0, seed=1
        )
        assert all(r.time < 5.0 + 0.03 for r in trace.requests)

    def test_dataset_weights_respected(self):
        datasets = dataset_suite(4, GiB)
        trace = poisson_action_stream(
            datasets,
            50.0,
            arrival_rate=2.0,
            mean_action_duration=1.0,
            dataset_weights=[1.0, 1.0, 0.0, 0.0],
            seed=2,
        )
        used = {r.dataset for r in trace.requests}
        assert used <= {"ds0", "ds1", "ds00", "ds01"} | {"ds0", "ds1"} or used <= {
            "ds00",
            "ds01",
        }

    def test_weight_length_mismatch(self):
        datasets = dataset_suite(4, GiB)
        with pytest.raises(ValueError, match="weights"):
            poisson_action_stream(
                datasets,
                1.0,
                arrival_rate=1.0,
                mean_action_duration=1.0,
                dataset_weights=[1.0],
            )

    def test_distinct_action_ids(self):
        datasets = dataset_suite(2, GiB)
        trace = poisson_action_stream(
            datasets, 30.0, arrival_rate=2.0, mean_action_duration=1.0, seed=4
        )
        by_action = {}
        for r in trace.requests:
            by_action.setdefault(r.action, []).append(r.sequence)
        for seqs in by_action.values():
            assert seqs == list(range(len(seqs)))

"""Tests for the Table II scenario factories."""

import pytest

from repro.core.chunks import total_size
from repro.util.units import GiB, TiB
from repro.workload.scenarios import (
    Scenario,
    TARGET_FPS,
    custom_scenario,
    make_scenario,
    scenario_1,
    scenario_2,
    scenario_3,
    scenario_4,
)


class TestTableII:
    def test_scenario1_row(self):
        sc = scenario_1()
        assert sc.system.node_count == 8
        assert sc.system.total_memory == 16 * GiB
        assert len(sc.datasets) == 6
        assert total_size(sc.datasets) == 12 * GiB
        assert sc.trace.duration == 60.0
        assert sc.trace.batch_count == 0
        assert sc.trace.interactive_count == 12006
        assert sc.target_framerate == TARGET_FPS
        assert sc.target_framerate == pytest.approx(33.33, abs=0.01)

    def test_scenario2_row(self):
        sc = scenario_2()
        assert sc.system.node_count == 8
        assert len(sc.datasets) == 12
        assert total_size(sc.datasets) == 24 * GiB
        assert sc.trace.duration == 120.0
        # Table II: 2251 batch / 21011 interactive — generated counts
        # land within sampling noise of the published totals.
        assert 1000 < sc.trace.batch_count < 3600
        assert 14000 < sc.trace.interactive_count < 28000

    def test_scenario3_row(self):
        sc = scenario_3()
        assert sc.system.node_count == 64
        assert sc.system.total_memory == 512 * GiB
        assert len(sc.datasets) == 32
        assert total_size(sc.datasets) == 256 * GiB
        assert sc.trace.duration == 300.0
        assert 5000 < sc.trace.batch_count < 15000
        assert 110_000 < sc.trace.interactive_count < 210_000

    def test_scenario4_row(self):
        sc = scenario_4(scale=0.2)  # keep the test fast; rates unscaled
        assert sc.system.node_count == 64
        assert len(sc.datasets) == 128
        assert total_size(sc.datasets) == 1 * TiB
        assert sc.trace.duration == pytest.approx(120.0)
        # Rates match Table II: ~59 batch jobs/s and ~647 interactive/s.
        assert 30 < sc.trace.batch_count / sc.trace.duration < 95
        assert 450 < sc.trace.interactive_count / sc.trace.duration < 850

    def test_scale_shrinks_duration_not_rates(self):
        full = scenario_1()
        small = scenario_1(scale=0.25)
        assert small.trace.duration == pytest.approx(15.0)
        rate_full = full.trace.interactive_count / full.trace.duration
        rate_small = small.trace.interactive_count / small.trace.duration
        assert rate_small == pytest.approx(rate_full, rel=0.05)

    def test_scenario2_interactive_working_set(self):
        """Interactive actions restrict to the first 8 datasets; batch
        ranges over all 12."""
        from repro.core.job import JobType

        sc = scenario_2()
        interactive_ds = {
            r.dataset
            for r in sc.trace.requests
            if r.job_type is JobType.INTERACTIVE
        }
        assert interactive_ds <= {f"ds{i:02d}" for i in range(8)}
        batch_ds = {
            r.dataset for r in sc.trace.requests if r.job_type is JobType.BATCH
        }
        assert any(ds in batch_ds for ds in ("ds08", "ds09", "ds10", "ds11"))


class TestFactoryPlumbing:
    def test_make_scenario_dispatch(self):
        assert make_scenario(1).name == "scenario1"
        with pytest.raises(KeyError):
            make_scenario(5)

    def test_reproducible(self):
        a = scenario_2(scale=0.1)
        b = scenario_2(scale=0.1)
        assert a.trace.requests == b.trace.requests

    def test_custom_scenario(self):
        base = scenario_1(scale=0.05)
        sc = custom_scenario(base.system, base.trace, name="mine")
        assert isinstance(sc, Scenario)
        assert sc.name == "mine"

    def test_prewarm_default_on(self):
        assert scenario_1().prewarm is True

    def test_summary_nonempty(self):
        assert "scenario1" in scenario_1(scale=0.05).summary()

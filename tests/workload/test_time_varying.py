"""Tests for time-varying batch submissions."""

import pytest

from repro.core.chunks import dataset_suite
from repro.core.job import JobType
from repro.util.units import GiB
from repro.workload.batch import TimeVaryingSubmission, time_varying_batch_stream


class TestTimeVaryingSubmission:
    def test_frames_sweep_timesteps(self):
        sub = TimeVaryingSubmission(
            1, 1, timesteps=["t0", "t1", "t2"], time=0.0, frames=5
        )
        reqs = sub.requests()
        assert [r.dataset for r in reqs] == ["t0", "t1", "t2", "t0", "t1"]
        assert [r.sequence for r in reqs] == [0, 1, 2, 3, 4]
        assert all(r.job_type is JobType.BATCH for r in reqs)

    def test_empty_timesteps_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingSubmission(1, 1, timesteps=[], time=0.0, frames=2).requests()

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingSubmission(
                1, 1, timesteps=["t0"], time=0.0, frames=0
            ).requests()


class TestTimeVaryingStream:
    def test_every_submission_touches_many_datasets(self):
        series = dataset_suite(8, GiB, prefix="ts")
        trace = time_varying_batch_stream(
            series,
            30.0,
            submission_rate=0.3,
            frames_per_submission=8,
            seed=5,
        )
        by_submission = {}
        for r in trace.requests:
            by_submission.setdefault(r.action, set()).add(r.dataset)
        assert by_submission
        for datasets in by_submission.values():
            assert len(datasets) == 8  # one frame per timestep

    def test_reproducible(self):
        series = dataset_suite(4, GiB, prefix="ts")
        a = time_varying_batch_stream(
            series, 20.0, submission_rate=0.5, frames_per_submission=4, seed=1
        )
        b = time_varying_batch_stream(
            series, 20.0, submission_rate=0.5, frames_per_submission=4, seed=1
        )
        assert a.requests == b.requests

    def test_id_namespace(self):
        series = dataset_suite(2, GiB, prefix="ts")
        trace = time_varying_batch_stream(
            series, 20.0, submission_rate=0.5, frames_per_submission=2, seed=2
        )
        assert all(r.action >= 2_000_000 for r in trace.requests)

    def test_end_to_end_deferral_protects_interactive(self):
        """Time-varying batch churn (every frame a different dataset)
        is the worst case for caches; OURS's deferral keeps the
        interactive stream healthy while FCFSL's immediate scheduling
        lets the churn stall it."""
        from repro.sim.config import system_linux8
        from repro.sim.simulator import run_simulation
        from repro.workload.actions import persistent_actions
        from repro.workload.scenarios import Scenario
        from repro.workload.trace import merge_traces

        hot = dataset_suite(4, 2 * GiB)  # interactive working set
        series = dataset_suite(8, 2 * GiB, prefix="ts")  # timesteps
        duration = 20.0
        interactive = persistent_actions(
            hot, duration, target_framerate=100.0 / 3.0, seed=3, name="i"
        )
        batch = time_varying_batch_stream(
            series,
            duration,
            submission_rate=0.3,
            frames_per_submission=8,
            seed=4,
        )
        scenario = Scenario(
            name="tv",
            system=system_linux8(),
            trace=merge_traces([interactive, batch], name="tv"),
        )
        ours = run_simulation(scenario, "OURS")
        fcfsl = run_simulation(scenario, "FCFSL")
        assert ours.interactive_fps > fcfsl.interactive_fps
        assert ours.interactive_fps > 0.7 * (100.0 / 3.0)

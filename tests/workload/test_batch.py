"""Tests for batch submission generation."""

import pytest

from repro.core.chunks import dataset_suite
from repro.core.job import JobType
from repro.util.units import GiB
from repro.workload.batch import BatchSubmission, poisson_batch_stream


class TestBatchSubmission:
    def test_requests_all_at_submission_time(self):
        sub = BatchSubmission(5, 9, "ds", time=3.0, frames=4)
        reqs = sub.requests()
        assert len(reqs) == 4
        assert all(r.time == 3.0 for r in reqs)
        assert all(r.job_type is JobType.BATCH for r in reqs)
        assert all(r.action == 5 for r in reqs)
        assert [r.sequence for r in reqs] == [0, 1, 2, 3]

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            BatchSubmission(0, 0, "ds", time=0.0, frames=0).requests()


class TestPoissonBatchStream:
    def test_reproducible(self):
        datasets = dataset_suite(3, GiB)
        t1 = poisson_batch_stream(
            datasets, 50.0, submission_rate=0.5, mean_frames=20, seed=7
        )
        t2 = poisson_batch_stream(
            datasets, 50.0, submission_rate=0.5, mean_frames=20, seed=7
        )
        assert t1.requests == t2.requests

    def test_all_batch_type(self):
        datasets = dataset_suite(3, GiB)
        trace = poisson_batch_stream(
            datasets, 20.0, submission_rate=1.0, mean_frames=10, seed=0
        )
        assert trace.interactive_count == 0
        assert trace.batch_count == len(trace.requests) > 0

    def test_expected_total_magnitude(self):
        datasets = dataset_suite(3, GiB)
        trace = poisson_batch_stream(
            datasets, 400.0, submission_rate=1.0, mean_frames=25, seed=1
        )
        expected = 400.0 * 1.0 * 25
        assert 0.6 * expected < trace.batch_count < 1.4 * expected

    def test_id_offsets_keep_namespaces_disjoint(self):
        datasets = dataset_suite(2, GiB)
        trace = poisson_batch_stream(
            datasets,
            20.0,
            submission_rate=0.5,
            mean_frames=5,
            first_submission_id=1_000_000,
            seed=2,
        )
        assert all(r.action >= 1_000_000 for r in trace.requests)

    def test_frames_at_least_one(self):
        datasets = dataset_suite(2, GiB)
        trace = poisson_batch_stream(
            datasets, 50.0, submission_rate=2.0, mean_frames=1.0, seed=3
        )
        counts = {}
        for r in trace.requests:
            counts[r.action] = counts.get(r.action, 0) + 1
        assert all(c >= 1 for c in counts.values())

"""Property-based tests for workload traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import Dataset
from repro.core.job import JobType
from repro.util.units import MiB
from repro.workload.trace import Request, WorkloadTrace, merge_traces

DATASETS = [Dataset("a", 256 * MiB), Dataset("b", 512 * MiB)]

request_strategy = st.builds(
    Request,
    time=st.floats(0.0, 100.0, allow_nan=False),
    job_type=st.sampled_from(list(JobType)),
    dataset=st.sampled_from(["a", "b"]),
    user=st.integers(0, 5),
    action=st.integers(0, 10),
    sequence=st.integers(0, 100),
)


@given(requests=st.lists(request_strategy, max_size=60))
@settings(max_examples=100, deadline=None)
def test_trace_always_sorted_and_counts_consistent(requests):
    trace = WorkloadTrace(
        requests=requests, datasets=list(DATASETS), duration=100.0
    )
    times = [r.time for r in trace.requests]
    assert times == sorted(times)
    assert trace.interactive_count + trace.batch_count == len(trace.requests)


@given(requests=st.lists(request_strategy, max_size=40))
@settings(max_examples=100, deadline=None)
def test_json_roundtrip_exact(requests):
    trace = WorkloadTrace(
        requests=requests, datasets=list(DATASETS), duration=100.0, name="p"
    )
    restored = WorkloadTrace.from_json(trace.to_json())
    assert restored.requests == trace.requests
    assert restored.datasets == trace.datasets
    assert restored.name == trace.name


@given(
    a=st.lists(request_strategy, max_size=30),
    b=st.lists(request_strategy, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_merge_preserves_every_request(a, b):
    ta = WorkloadTrace(requests=a, datasets=list(DATASETS), duration=50.0)
    tb = WorkloadTrace(requests=b, datasets=list(DATASETS), duration=100.0)
    merged = merge_traces([ta, tb])
    assert len(merged.requests) == len(ta.requests) + len(tb.requests)
    assert merged.duration == 100.0
    # Multiset preservation.
    assert sorted(
        merged.requests, key=lambda r: (r.time, r.action, r.sequence, r.user)
    ) == sorted(
        ta.requests + tb.requests,
        key=lambda r: (r.time, r.action, r.sequence, r.user),
    )

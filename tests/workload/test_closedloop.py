"""Tests for closed-loop users."""

import pytest

from repro.core.chunks import dataset_suite
from repro.sim.config import system_linux8
from repro.util.units import GiB
from repro.workload.closedloop import run_closed_loop


def run(users=2, duration=3.0, window=3, scheduler="OURS", nodes=8):
    datasets = dataset_suite(min(users, 6), 2 * GiB)
    return run_closed_loop(
        system_linux8(node_count=nodes),
        datasets,
        scheduler=scheduler,
        users=users,
        duration=duration,
        window=window,
    )


class TestValidation:
    def test_needs_users_and_datasets(self):
        with pytest.raises(ValueError):
            run_closed_loop(
                system_linux8(), [], scheduler="OURS", users=1, duration=1.0
            )
        with pytest.raises(ValueError):
            run(users=0)


class TestLightLoad:
    def test_underloaded_users_hit_target(self):
        """With spare capacity, closed-loop == open-loop behaviour."""
        result = run(users=2, duration=3.0)
        fps = result.delivered_fps_per_user()
        for rate in fps.values():
            assert rate > 0.9 * (100.0 / 3.0)
        assert result.mean_interactive_latency() < 0.1
        # Barely any stalling.
        assert sum(u.stalled for u in result.users) < 10

    def test_outstanding_never_exceeds_window(self):
        result = run(users=2, duration=2.0, window=2)
        for user in result.users:
            assert user.outstanding <= 2


class TestOverload:
    def test_latency_bounded_under_overload(self):
        """10 users on 8 nodes: users stall instead of queueing."""
        result = run(users=10, duration=8.0, window=3)
        assert result.mean_interactive_latency() < 0.5
        assert sum(u.stalled for u in result.users) > 0

    def test_throughput_fair_across_users(self):
        result = run(users=10, duration=8.0, window=3)
        fps = list(result.delivered_fps_per_user().values())
        assert max(fps) < 1.3 * min(fps)

    def test_fewer_requests_than_open_loop(self):
        """Pacing reduces issued requests below duration/interval."""
        result = run(users=10, duration=8.0, window=3)
        open_loop_would_issue = 10 * int(8.0 / 0.03)
        assert result.issued < 0.9 * open_loop_would_issue

"""Smoke tests: every example script runs end-to-end at tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--scale", "0.1")
        assert "OURS" in out and "FCFS" in out

    def test_cost_model_timeline(self):
        out = run_example("cost_model_timeline.py")
        assert "Definition 4" in out or "framerates" in out
        assert "33.33" in out

    def test_custom_scheduler(self):
        out = run_example("custom_scheduler.py", "--scale", "0.08")
        assert "DELAY" in out

    def test_render_gallery(self, tmp_path):
        out = run_example(
            "render_gallery.py",
            "--size", "20", "--image", "32", "--ranks", "2",
            "--out", str(tmp_path),
        )
        assert "supernova" in out
        assert (tmp_path / "supernova.ppm").exists()
        assert (tmp_path / "plume.ppm").exists()
        assert (tmp_path / "combustion.ppm").exists()

    def test_batch_animation(self, tmp_path):
        out = run_example(
            "batch_animation.py",
            "--frames", "2", "--size", "16", "--image", "24",
            "--ranks", "2", "--out", str(tmp_path),
        )
        assert "2 frames" in out
        assert (tmp_path / "frame_0000.ppm").exists()

    def test_service_dynamics(self):
        out = run_example("service_dynamics.py", "--scale", "0.1")
        assert "node backlog" in out
        assert "OURS" in out and "FCFSL" in out

    def test_multi_user_service(self):
        out = run_example(
            "multi_user_service.py", "--duration", "6", "--nodes", "4"
        )
        assert "Per-action delivered framerates" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py", "--scale", "0.15")
        assert "with crashes" in out
        assert "busy nodes" in out

    def test_slo_report(self):
        out = run_example("slo_report.py", "--scale", "0.1")
        assert "SLO report" in out
        assert "fps >= 33.3" in out
        assert "p95 latency <= 0.25s" in out
        assert "framerate-SLO violation time" in out

    def test_overload_management(self):
        out = run_example("overload_management.py", "--scale", "0.05")
        assert "offered load: 2.5x" in out
        assert "frontend:" in out
        assert "Admitted sessions" in out

    def test_trace_inspection(self, tmp_path):
        out = run_example(
            "trace_inspection.py", "--scale", "0.05",
            "--trace-dir", str(tmp_path),
        )
        assert "FCFS (locality-blind)" in out
        assert "OURS (locality-aware)" in out
        assert "I/O-stall fraction" in out
        assert (tmp_path / "scenario1_FCFS.json").exists()
        assert (tmp_path / "scenario1_OURS.json").exists()

    def test_federation(self):
        out = run_example("federation.py", "--scale", "0.02", "--shards", "2")
        assert "=== hash router ===" in out
        assert "=== locality router ===" in out
        assert "SLO report (merged)" in out
        assert "locality-minus-hash hit-rate delta" in out

    def test_live_watch(self, tmp_path):
        stream = tmp_path / "run.ndjson"
        out = run_example(
            "live_watch.py", "--scale", "0.1", "--out", str(stream),
        )
        assert "streamed 64 snapshots" in out
        assert "events/s" in out
        assert "replaying scenario1" in out
        assert "summary: 64 snapshots, 0 anomalies, 0 stalls" in out
        assert stream.exists()

    def test_live_watch_storm(self, tmp_path):
        out = run_example(
            "live_watch.py", "--scale", "0.1", "--storm",
            "--out", str(tmp_path / "storm.ndjson"),
        )
        assert "fault: crash" in out
        assert "!!" in out
        assert "faults localized" in out
        assert "0 false positives" in out

"""Property-based end-to-end invariants of the simulation.

Random small workloads are driven through the full service under every
scheduler, then structural invariants are checked:

* task conservation — every submitted job's tasks execute exactly once;
* time sanity — ``JI <= JS <= TF <= JF`` per job, clock monotonicity;
* **cache-mirror exactness** — the head node's mirrored ``Cache`` table
  equals each rendering node's actual LRU content at quiescence (the
  property the whole locality design rests on);
* accounting — hit + miss counts match executed tasks; storage loads
  balance.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import dataset_suite
from repro.core.registry import SCHEDULER_NAMES, make_scheduler
from repro.sim.config import system_linux8
from repro.sim.service import VisualizationService
from repro.sim.simulator import run_simulation
from repro.util.units import GiB, MiB
from repro.workload.actions import poisson_action_stream
from repro.workload.batch import poisson_batch_stream
from repro.workload.scenarios import Scenario
from repro.workload.trace import merge_traces


def random_scenario(seed: int, *, nodes: int = 4, n_datasets: int = 3) -> Scenario:
    system = system_linux8(node_count=nodes, memory_quota=1 * GiB)
    datasets = dataset_suite(n_datasets, 1 * GiB)  # 2 chunks each @512MiB
    interactive = poisson_action_stream(
        datasets,
        3.0,
        arrival_rate=1.5,
        mean_action_duration=1.0,
        target_framerate=100.0 / 3.0,
        seed=seed,
        name="rand-i",
    )
    batch = poisson_batch_stream(
        datasets,
        3.0,
        submission_rate=0.8,
        mean_frames=4,
        seed=seed + 1,
        name="rand-b",
    )
    return Scenario(
        name=f"rand{seed}",
        system=system,
        trace=merge_traces([interactive, batch], name=f"rand{seed}"),
        prewarm=(seed % 2 == 0),
    )


def run_with_service(scenario: Scenario, scheduler_name: str):
    """Like run_simulation but keeps the service/cluster for inspection."""
    from repro.cluster.event_queue import EventQueue, PRIORITY_ARRIVAL

    scheduler = make_scheduler(scheduler_name)
    events = EventQueue()
    cluster = scenario.system.build_cluster(events=events)
    service = VisualizationService(cluster, scheduler, scenario.system.chunk_max)
    if scenario.prewarm:
        service.prewarm(scenario.trace.datasets)
    datasets = {d.name: d for d in scenario.trace.datasets}
    jobs: List = []

    def submit(request, dataset):
        from repro.core.job import RenderJob

        job = RenderJob(
            request.job_type,
            dataset,
            cluster.now,
            user=request.user,
            action=request.action,
            sequence=request.sequence,
        )
        jobs.append(job)
        service.submit(job)

    for request in scenario.trace.requests:
        events.schedule(
            request.time,
            submit,
            request,
            datasets[request.dataset],
            priority=PRIORITY_ARRIVAL,
        )
    service.start()
    events.run()  # to quiescence (drain)
    return service, jobs


@pytest.mark.parametrize("scheduler_name", SCHEDULER_NAMES)
def test_invariants_each_scheduler(scheduler_name):
    scenario = random_scenario(17)
    service, jobs = run_with_service(scenario, scheduler_name)
    _check_invariants(service, jobs)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_invariants_random_workloads_ours(seed):
    scenario = random_scenario(seed)
    service, jobs = run_with_service(scenario, "OURS")
    _check_invariants(service, jobs)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_invariants_random_workloads_fcfsl(seed):
    scenario = random_scenario(seed)
    service, jobs = run_with_service(scenario, "FCFSL")
    _check_invariants(service, jobs)


def _check_invariants(service: VisualizationService, jobs) -> None:
    cluster = service.cluster

    # -- task conservation --------------------------------------------------
    assert not service.has_work(), "drained run must be quiescent"
    assert service.jobs_completed == len(jobs)
    total_tasks = sum(j.task_count for j in jobs)
    assert cluster.total_tasks_executed() == total_tasks
    hits = sum(n.cache_hits for n in cluster.nodes)
    misses = sum(n.cache_misses for n in cluster.nodes)
    assert hits + misses == total_tasks

    # -- per-job time sanity --------------------------------------------------
    for job in jobs:
        assert job.is_complete
        assert job.arrival_time <= job.start_time() + 1e-12
        assert job.start_time() <= job.last_task_finish()
        assert job.last_task_finish() <= job.finish_time
        for task in job.tasks:
            assert task.node is not None
            assert 0 <= task.io_time
            assert task.start_time <= task.finish_time

    # -- cache-mirror exactness -----------------------------------------------
    for k, node in enumerate(cluster.nodes):
        mirror = service.tables.mirrors[k]
        assert mirror.chunks() == node.cache.chunks(), (
            f"head-node mirror of node {k} diverged from reality"
        )
        mirror.check_invariants()
    service.tables.check_invariants()

    # -- storage accounting ------------------------------------------------------
    assert cluster.storage.active_loads == 0
    assert cluster.storage.total_loads == misses

"""End-to-end shape tests: the paper's headline results at small scale.

These run the actual Table II scenarios (scaled down) under the real
schedulers and assert the *qualitative* results of Figs. 4-7 and
Table III — who wins, by roughly what factor — not absolute numbers.
"""

import pytest

from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1, scenario_2

TARGET = 100.0 / 3.0


@pytest.fixture(scope="module")
def scenario1_results():
    sc = scenario_1(scale=0.25)
    return {
        name: run_simulation(sc, name)
        for name in ("OURS", "FCFSL", "FCFSU", "FCFS", "FS")
    }


class TestScenario1Shapes:
    """Fig. 4: workload balancing with fully cacheable data."""

    def test_ours_reaches_target_framerate(self, scenario1_results):
        assert scenario1_results["OURS"].interactive_fps > 0.97 * TARGET

    def test_fcfsl_reaches_target_framerate(self, scenario1_results):
        assert scenario1_results["FCFSL"].interactive_fps > 0.97 * TARGET

    def test_fcfsu_near_half_target(self, scenario1_results):
        fps = scenario1_results["FCFSU"].interactive_fps
        assert 0.35 * TARGET < fps < 0.62 * TARGET

    def test_locality_blind_collapse(self, scenario1_results):
        """FS and FCFS deliver (well) under 10% of the target."""
        for name in ("FS", "FCFS"):
            assert scenario1_results[name].interactive_fps < 0.1 * TARGET

    def test_latency_ordering(self, scenario1_results):
        ours = scenario1_results["OURS"].interactive_latency.mean
        fcfsu = scenario1_results["FCFSU"].interactive_latency.mean
        fs = scenario1_results["FS"].interactive_latency.mean
        assert ours < 0.2  # near-interactive
        assert fcfsu > 10 * ours  # backlogged at half throughput
        assert fs > 10 * ours
        # (FS completes so few jobs that its completed-only latency is
        # survivorship-biased; no FS-vs-FCFSU ordering asserted here.)

    def test_hit_rates_table3(self, scenario1_results):
        """Table III row 1: OURS/FCFSU/FCFSL ~99.9%; FS far below."""
        for name in ("OURS", "FCFSL", "FCFSU"):
            assert scenario1_results[name].hit_rate > 0.995
        assert scenario1_results["FS"].hit_rate < 0.7

    def test_scheduling_cost_magnitude(self, scenario1_results):
        """Per-job scheduling stays in the tens-of-microseconds range
        (Table III reports 24-65 us on the 8-node system)."""
        for name, result in scenario1_results.items():
            assert result.sched_cost_us < 2000, name

    def test_ours_utilization_sane(self, scenario1_results):
        assert 0.3 < scenario1_results["OURS"].mean_node_utilization <= 1.0


@pytest.fixture(scope="module")
def scenario2_results():
    sc = scenario_2(scale=0.35)
    return {
        name: run_simulation(sc, name)
        for name in ("OURS", "FCFSL", "FCFSU")
    }


class TestScenario2Shapes:
    """Fig. 5: batch deferral under memory pressure."""

    def test_ours_best_interactive_framerate(self, scenario2_results):
        ours = scenario2_results["OURS"].interactive_fps
        assert ours > scenario2_results["FCFSL"].interactive_fps
        assert ours > scenario2_results["FCFSU"].interactive_fps

    def test_ours_acceptable_while_others_degrade(self, scenario2_results):
        assert scenario2_results["OURS"].interactive_fps > 0.5 * TARGET
        assert scenario2_results["FCFSU"].interactive_fps < 0.62 * TARGET

    def test_ours_lowest_interactive_latency(self, scenario2_results):
        ours = scenario2_results["OURS"].interactive_latency.mean
        for other in ("FCFSL", "FCFSU"):
            assert ours < scenario2_results[other].interactive_latency.mean

    def test_batch_jobs_complete_under_all(self, scenario2_results):
        for name, result in scenario2_results.items():
            assert result.batch_latency.count > 0, name

    def test_high_hit_rates_under_pressure(self, scenario2_results):
        """Table III row 2: all three locality-aware schemes > 99%."""
        for name, result in scenario2_results.items():
            assert result.hit_rate > 0.99, name


class TestTaskConservation:
    """Every submitted task executes exactly once (drained run)."""

    def test_no_lost_or_duplicated_tasks(self):
        sc = scenario_1(scale=0.05)
        for name in ("OURS", "FCFS", "FCFSU", "SF", "FS"):
            result = run_simulation(sc, name, config=RunConfig(drain=True))
            assert result.drained, name
            assert result.jobs_completed == result.jobs_submitted, name
            per_job = 8 if name == "FCFSU" else 4
            expected_tasks = result.jobs_submitted * per_job
            assert result.tasks_executed == expected_tasks, name

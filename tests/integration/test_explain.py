"""End-to-end "explain why": locality converts I/O time into render time.

The paper's Table III effect, reproduced through the audit/causal layer:
on the same Scenario 2 workload the locality-aware scheduler (OURS)
spends a strictly smaller share of its critical paths fetching chunks
and a strictly larger share rendering than locality-blind FCFS does,
and the two decision streams demonstrably diverge.
"""

from repro.obs.audit import AuditConfig
from repro.obs.causal import first_divergence
from repro.cli import main
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

#: Small but non-degenerate: thousands of decisions, hundreds of jobs.
SCALE = 0.05


def _explained_pair():
    scenario = make_scenario(2, scale=SCALE)
    config = RunConfig(drain=True, audit=AuditConfig(capacity=None))
    ours = run_simulation(scenario, "OURS", config=config)
    fcfs = run_simulation(scenario, "FCFS", config=config)
    return ours, fcfs


class TestLocalityEffect:
    def test_io_share_down_render_share_up(self):
        ours, fcfs = _explained_pair()
        shares_ours = ours.critical_paths.phase_shares()
        shares_fcfs = fcfs.critical_paths.phase_shares()
        assert shares_ours["io"] < shares_fcfs["io"], (
            shares_ours,
            shares_fcfs,
        )
        assert shares_ours["render"] > shares_fcfs["render"], (
            shares_ours,
            shares_fcfs,
        )

    def test_decision_streams_diverge(self):
        ours, fcfs = _explained_pair()
        divergence = first_divergence(list(ours.audit), list(fcfs.audit))
        assert divergence is not None
        assert divergence.a.key() == divergence.b.key()
        assert divergence.a.node != divergence.b.node

    def test_same_scheduler_never_diverges_from_itself(self):
        scenario = make_scenario(2, scale=SCALE)
        config = RunConfig(drain=True, audit=AuditConfig(capacity=None))
        first = run_simulation(scenario, "OURS", config=config)
        second = run_simulation(scenario, "OURS", config=config)
        assert first_divergence(list(first.audit), list(second.audit)) is None


class TestExplainCli:
    def test_explain_smoke(self, capsys):
        code = main(
            [
                "explain",
                "--scenario", "2",
                "--scale", str(SCALE),
                "--drain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first divergent decision" in out
        assert "critical-path latency attribution" in out
        assert "locality converts I/O time into render time" in out

    def test_explain_rejects_wrong_scheduler_count(self, capsys):
        assert main(["explain", "--schedulers", "OURS"]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_explain_rejects_unknown_scheduler(self, capsys):
        assert main(["explain", "--schedulers", "OURS,BOGUS"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_simulate_audit_flag_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "decisions.jsonl"
        code = main(
            [
                "simulate",
                "--scenario", "2",
                "--scale", "0.03",
                "--schedulers", "OURS",
                "--audit", str(path),
            ]
        )
        assert code == 0
        assert path.exists() and path.read_text().strip()
        assert "audit" in capsys.readouterr().out

    def test_simulate_audit_flag_per_scheduler_files(self, tmp_path):
        path = tmp_path / "d.jsonl"
        code = main(
            [
                "simulate",
                "--scenario", "2",
                "--scale", "0.03",
                "--schedulers", "OURS,FCFS",
                "--audit", str(path),
            ]
        )
        assert code == 0
        assert (tmp_path / "d.OURS.jsonl").exists()
        assert (tmp_path / "d.FCFS.jsonl").exists()

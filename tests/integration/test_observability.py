"""End-to-end observability: traced Scenario 1 runs and the CLI flags."""

import json

import pytest

from repro.cli import main
from repro.obs.chrome import to_chrome_trace
from repro.obs.tracer import PID_HEAD, NullTracer, Tracer, pid_for_node
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


@pytest.fixture(scope="module")
def traced():
    """One traced Scenario 1 / OURS run shared by the module's tests."""
    tracer = Tracer()
    result = run_simulation(
        scenario_1(scale=0.1), "OURS", config=RunConfig(tracer=tracer)
    )
    return tracer, result


class TestTracedRun:
    def test_pipeline_spans_present(self, traced):
        tracer, _ = traced
        categories = {e.category for e in tracer.events if e.phase == "X"}
        assert {"io", "render", "composite", "sched"} <= categories

    def test_render_spans_on_node_tracks(self, traced):
        tracer, _ = traced
        for node_id in range(8):
            spans = tracer.events_for(pid_for_node(node_id), "render")
            assert spans, f"node {node_id} recorded no render spans"

    def test_scheduler_spans_on_head(self, traced):
        tracer, _ = traced
        sched = tracer.events_for(PID_HEAD, "scheduler")
        assert sched
        assert all(e.name == "schedule[OURS]" for e in sched)

    def test_counter_tracks(self, traced):
        tracer, _ = traced
        assert len(tracer.counter_tracks()) >= 3

    def test_no_dangling_spans(self, traced):
        tracer, _ = traced
        assert tracer.open_spans() == []

    def test_profile_fractions_sum_to_one(self, traced):
        _, result = traced
        for node_id, fractions in result.node_utilization_fractions().items():
            assert sum(fractions.values()) == pytest.approx(1.0), (
                f"node {node_id} fractions do not partition the run"
            )

    def test_chrome_export_of_full_run(self, traced):
        tracer, _ = traced
        doc = to_chrome_trace(tracer)
        json.dumps(doc)  # must be serializable without a custom encoder
        names = {
            r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert "head node" in names
        assert "render node 0" in names


class TestDisabledTracer:
    def test_disabled_run_matches_untracked(self, traced):
        _, traced_result = traced
        plain = run_simulation(scenario_1(scale=0.1), "OURS")
        null = NullTracer()
        nulled = run_simulation(
            scenario_1(scale=0.1), "OURS", config=RunConfig(tracer=null)
        )
        assert len(null) == 0
        for result in (plain, nulled):
            assert result.tracer is None
            assert result.jobs_completed == traced_result.jobs_completed
            assert result.interactive_fps == pytest.approx(
                traced_result.interactive_fps
            )
            assert result.hit_rate == pytest.approx(traced_result.hit_rate)

    def test_profile_available_without_tracer(self):
        result = run_simulation(scenario_1(scale=0.05), "FCFS")
        assert result.profile is not None
        assert "mean" in result.profile_table()


class TestCliTrace:
    def test_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        main(
            [
                "simulate", "--scenario", "1", "--scheduler", "OURS",
                "--scale", "0.05", "--trace", str(out),
            ]
        )
        doc = json.loads(out.read_text())
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"X", "i", "C", "M"} <= phases
        assert doc["otherData"]["scheduler"] == "OURS"
        assert str(out) in capsys.readouterr().out

    def test_trace_with_multiple_schedulers_splits_files(self, tmp_path):
        out = tmp_path / "trace.json"
        main(
            [
                "simulate", "--scenario", "1", "--schedulers", "FCFS,OURS",
                "--scale", "0.05", "--trace", str(out),
            ]
        )
        for name in ("FCFS", "OURS"):
            per = tmp_path / f"trace.{name}.json"
            assert per.exists(), f"missing per-scheduler trace {per.name}"
            assert json.loads(per.read_text())["otherData"]["scheduler"] == name

    def test_profile_flag_prints_table(self, capsys):
        main(
            [
                "simulate", "--scenario", "1", "--scheduler", "OURS",
                "--scale", "0.05", "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert "render" in out
        assert "mean" in out

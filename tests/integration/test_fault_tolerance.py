"""Fault tolerance (paper §VI-D): node crashes mid-run.

"Our scheduling method has a certain degree of fault tolerance when
some of the nodes crash.  By dynamically updating the [tables] to
identify those unavailable nodes, the rendering can still carry on as
long as the system has copies of the required data chunks on other
rendering nodes."
"""

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.cluster.storage import StorageSpec
from repro.core.chunks import Dataset, dataset_suite
from repro.core.job import JobType, RenderJob
from repro.core.ours import OursScheduler
from repro.core.fcfs import FCFSLScheduler, FCFSScheduler
from repro.sim.service import VisualizationService
from repro.util.units import GiB, MiB


def make_service(scheduler, nodes=4, quota=GiB):
    cluster = Cluster(
        nodes,
        quota,
        CostParameters(render_jitter=0.0),
        storage_spec=StorageSpec(bandwidth=100 * MiB, latency=0.01),
    )
    return VisualizationService(cluster, scheduler, chunk_max=256 * MiB)


class TestNodeFail:
    def test_failed_node_rejects_work(self):
        service = make_service(FCFSScheduler())
        node = service.cluster.nodes[0]
        node.fail()
        assert not node.alive
        job = RenderJob(JobType.INTERACTIVE, Dataset("d", 256 * MiB), 0.0)
        task = job.decompose(service.decomposition)[0]
        with pytest.raises(RuntimeError, match="failed"):
            node.enqueue(task)

    def test_fail_returns_orphans_with_reset_state(self):
        service = make_service(FCFSScheduler(), nodes=1)
        job = RenderJob(JobType.BATCH, Dataset("d", GiB), 0.0)
        service.submit(job)  # 4 tasks queued on the single node
        node = service.cluster.nodes[0]
        assert node.busy
        orphans = node.fail()
        assert len(orphans) == 4
        for t in orphans:
            assert t.node is None
            assert t.start_time is None
            assert t.cache_hit is None
        assert node.cache.used_bytes == 0
        # Storage accounting balanced despite the aborted in-flight load.
        assert service.cluster.storage.active_loads == 0

    def test_fail_twice_is_idempotent(self):
        service = make_service(FCFSScheduler())
        node = service.cluster.nodes[0]
        assert node.fail() == []
        assert node.fail() == []


class TestTablesAfterFailure:
    def test_failed_node_removed_from_tables(self):
        service = make_service(FCFSLScheduler())
        ds = dataset_suite(1, GiB)
        service.prewarm(ds)
        chunk = service.decomposition.decompose(ds[0])[0]
        cached_on = next(iter(service.tables.cached_nodes(chunk)))
        service.fail_node(cached_on)
        assert cached_on not in service.tables.cached_nodes(chunk)
        assert service.tables.available[cached_on] == math.inf
        assert service.tables.alive[cached_on] is False
        service.tables.check_invariants()

    def test_greedy_never_selects_dead_node(self):
        service = make_service(FCFSScheduler())
        service.fail_node(0)
        for _ in range(8):
            job = RenderJob(
                JobType.INTERACTIVE, Dataset("d", GiB), service.cluster.now
            )
            service.submit(job)
        service.cluster.events.run()
        executed = [n.tasks_executed for n in service.cluster.nodes]
        assert executed[0] == 0
        assert sum(executed) == 32


class TestServiceRecovery:
    @pytest.mark.parametrize("scheduler_factory", [
        FCFSScheduler,
        FCFSLScheduler,
        lambda: OursScheduler(cycle=0.01),
    ])
    def test_all_jobs_complete_despite_crash(self, scheduler_factory):
        service = make_service(scheduler_factory())
        events = service.cluster.events
        datasets = dataset_suite(2, GiB)
        service.prewarm(datasets)
        jobs = []

        def submit_wave(t, n=4):
            for i in range(n):
                job = RenderJob(
                    JobType.INTERACTIVE,
                    datasets[i % 2],
                    events.now,
                    action=i,
                    sequence=int(t * 100),
                )
                jobs.append(job)
                service.submit(job)

        events.schedule(0.0, submit_wave, 0.0)
        events.schedule(0.05, service.fail_node, 1)
        events.schedule(0.06, submit_wave, 0.06)
        events.schedule(0.12, submit_wave, 0.12)
        service.start()
        events.run()
        assert all(j.is_complete for j in jobs)
        assert service.jobs_completed == len(jobs)
        assert not service.cluster.nodes[1].alive

    def test_replicated_chunks_keep_locality_after_crash(self):
        """A chunk cached on two nodes survives one crash without I/O."""
        service = make_service(FCFSLScheduler())
        events = service.cluster.events
        ds = Dataset("hot", 256 * MiB)
        chunk = service.decomposition.decompose(ds)[0]
        # Replicate on nodes 0 and 1.
        for k in (0, 1):
            service.cluster.nodes[k].cache.insert(chunk)
            service.tables.warm(chunk, k)
        service.fail_node(0)
        job = RenderJob(JobType.INTERACTIVE, ds, events.now)
        service.submit(job)
        events.run()
        (task,) = job.tasks
        assert task.node == 1
        assert task.cache_hit is True

    def test_lost_chunks_reload_elsewhere(self):
        """Chunks cached only on the dead node are reloaded from disk."""
        service = make_service(OursScheduler(cycle=0.01))
        events = service.cluster.events
        ds = Dataset("solo", 256 * MiB)
        chunk = service.decomposition.decompose(ds)[0]
        service.cluster.nodes[2].cache.insert(chunk)
        service.tables.warm(chunk, 2)
        service.fail_node(2)
        job = RenderJob(JobType.INTERACTIVE, ds, events.now)
        service.submit(job)
        service.start()
        events.run()
        (task,) = job.tasks
        assert task.node != 2
        assert task.cache_hit is False
        assert task.io_time > 1.0  # real disk reload

    def test_in_flight_task_recovered_once(self):
        """A task caught mid-execution completes exactly once, on a
        surviving node, with no stale completion from the dead one."""
        service = make_service(FCFSScheduler(), nodes=2)
        events = service.cluster.events
        job = RenderJob(JobType.INTERACTIVE, Dataset("d", 512 * MiB), 0.0)
        service.submit(job)  # 2 tasks → one per node
        victim = job.tasks[0].node
        events.schedule(0.5, service.fail_node, victim)  # mid-load (I/O ~2.6 s)
        events.run()
        assert job.is_complete
        assert service.jobs_completed == 1
        survivor = 1 - victim
        assert all(t.node == survivor for t in job.tasks)
        assert service.cluster.nodes[survivor].tasks_executed == 2

"""Tests for the SLO-burn-driven quality-ladder controller."""

from types import SimpleNamespace

import pytest

from repro.cluster.event_queue import EventQueue
from repro.core.job import JobType
from repro.frontend.config import DEFAULT_LADDER, DegradeConfig, QualityLevel
from repro.frontend.degradation import DegradationController


class FakeCollector:
    def __init__(self):
        self.records = []
        self.action_issues = {}


class FakeService:
    """Collector + clock: all the controller reads between ticks."""

    def __init__(self):
        self.collector = FakeCollector()
        self.cluster = SimpleNamespace(events=EventQueue(), now=0.0)

    def has_work(self):
        return False

    def deliver(self, frames, *, now, action=0):
        """Record ``frames`` interactive completions and an active span."""
        for _ in range(frames):
            self.collector.records.append(
                SimpleNamespace(job_type=JobType.INTERACTIVE)
            )
        self.collector.action_issues[action] = [float(frames), 0.0, now]


def make_controller(**overrides):
    config = DegradeConfig(
        sample_interval=1.0,
        step_down_burn=0.25,
        step_up_burn=0.05,
        patience=2,
        **overrides,
    )
    service = FakeService()
    ctrl = DegradationController(config, 10.0)
    ctrl.attach(service, horizon=100.0)
    return ctrl, service


def tick(ctrl, service, now, frames):
    service.cluster.now = now
    service.deliver(frames, now=now)
    ctrl._tick()


class TestKeepFrame:
    def test_full_quality_keeps_everything(self):
        ctrl, _ = make_controller()
        assert all(ctrl.keep_frame(i) for i in range(10))
        assert ctrl.frames_dropped == 0

    def test_half_rate_is_even_stride(self):
        ctrl, _ = make_controller()
        ctrl.level_index = 1  # half-rate
        kept = [i for i in range(10) if ctrl.keep_frame(i)]
        assert len(kept) == 5
        # Evenly spaced, deterministic — no two adjacent kept frames.
        assert all(b - a == 2 for a, b in zip(kept, kept[1:]))
        assert ctrl.frames_dropped == 5

    def test_quarter_rate(self):
        ctrl, _ = make_controller()
        ctrl.level_index = 3  # quarter
        kept = [i for i in range(20) if ctrl.keep_frame(i)]
        assert len(kept) == 5


class TestHysteresis:
    def test_sustained_burn_steps_down(self):
        ctrl, service = make_controller()
        tick(ctrl, service, 1.0, frames=2)  # 2 fps vs 10 → burn 0.8
        assert ctrl.level_index == 0  # one hot sample is not enough
        tick(ctrl, service, 2.0, frames=2)
        assert ctrl.level_index == 1
        change = ctrl.changes[-1]
        assert change.reason == "burn"
        assert change.level == 1

    def test_single_spike_does_not_degrade(self):
        ctrl, service = make_controller()
        tick(ctrl, service, 1.0, frames=2)  # hot
        tick(ctrl, service, 2.0, frames=9)  # neutral: fine for current,
        tick(ctrl, service, 3.0, frames=2)  # not cool enough to restore
        assert ctrl.level_index == 0

    def test_recovery_judged_against_restored_target(self):
        ctrl, service = make_controller()
        ctrl.level_index = 1  # half-rate: effective target 5 fps
        # 5 fps satisfies the current rung but NOT the full-rate rung
        # above (burn 0.5 >= 0.05) — no flapping back up.
        for now in (1.0, 2.0, 3.0):
            tick(ctrl, service, now, frames=5)
        assert ctrl.level_index == 1
        # Delivering the *full* target with margin restores.
        tick(ctrl, service, 4.0, frames=10)
        tick(ctrl, service, 5.0, frames=10)
        assert ctrl.level_index == 0
        assert ctrl.changes[-1].reason == "recovered"

    def test_idle_interval_is_not_judged(self):
        ctrl, service = make_controller()
        service.cluster.now = 1.0
        ctrl._tick()  # no active session: no hot/cool movement
        tick(ctrl, service, 2.0, frames=2)
        tick(ctrl, service, 3.0, frames=2)
        assert ctrl.level_index == 1

    def test_ladder_clamps_at_bottom(self):
        ctrl, service = make_controller()
        for step in range(20):
            tick(ctrl, service, 1.0 + step, frames=0)
        assert ctrl.level_index == len(DEFAULT_LADDER) - 1


class TestOverflowNudge:
    def test_nudges_accumulate_to_a_move(self):
        ctrl, _ = make_controller()
        ctrl.overflow_nudge()
        assert ctrl.level_index == 0
        ctrl.overflow_nudge()
        assert ctrl.level_index == 1
        assert ctrl.changes[-1].reason == "overflow"

    def test_nudge_resets_cool_streak(self):
        ctrl, service = make_controller()
        ctrl.level_index = 1
        tick(ctrl, service, 1.0, frames=10)  # cool
        ctrl.overflow_nudge()  # overload evidence cancels it
        tick(ctrl, service, 2.0, frames=10)
        assert ctrl.level_index == 1  # cool streak restarted


class TestConfig:
    def test_custom_ladder(self):
        ladder = (QualityLevel("full"), QualityLevel("low", 0.5, 0.25))
        ctrl, service = make_controller(ladder=ladder)
        tick(ctrl, service, 1.0, frames=0)
        tick(ctrl, service, 2.0, frames=0)
        assert ctrl.level.name == "low"
        assert ctrl.level.resolution_factor == 0.25

    def test_bad_factors_rejected(self):
        with pytest.raises(ValueError):
            QualityLevel("bad", 0.0, 1.0)
        with pytest.raises(ValueError):
            QualityLevel("bad", 1.0, 1.5)

    def test_burn_thresholds_validated(self):
        with pytest.raises(ValueError):
            DegradeConfig(step_down_burn=0.1, step_up_burn=0.2)

    def test_explicit_target_overrides_scenario(self):
        config = DegradeConfig(target_fps=20.0)
        ctrl = DegradationController(config, 33.33)
        assert ctrl.target_fps == 20.0

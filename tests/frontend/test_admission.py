"""Tests for admission control: token buckets and the session cap."""

import pytest

from repro.core.job import JobType
from repro.frontend.admission import AdmissionController, Decision, TokenBucket
from repro.frontend.config import AdmissionConfig
from repro.workload.trace import Request


def req(time, *, user=0, action=0, seq=0, job_type=JobType.INTERACTIVE):
    return Request(time, job_type, "ds", user, action, seq)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, capacity=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        # 0.5 s at 2 tokens/s refills one token.
        assert bucket.try_take(0.5)
        assert not bucket.try_take(0.5)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0)
        assert bucket.try_take(0.0)
        # A long idle period refills to capacity, not beyond.
        for _ in range(2):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)


class TestRateLimit:
    def test_burst_then_rate(self):
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=2.0))
        assert ctrl.decide(req(0.0, seq=0), 0.0).admitted
        assert ctrl.decide(req(0.0, seq=1), 0.0).admitted
        assert ctrl.decide(req(0.0, seq=2), 0.0) is Decision.REJECT_RATE
        # One second later the bucket holds one more token.
        assert ctrl.decide(req(1.0, seq=3), 1.0).admitted
        assert ctrl.rejected_rate == 1
        assert ctrl.admitted == 3

    def test_buckets_are_per_user(self):
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=1.0))
        assert ctrl.decide(req(0.0, user=0, action=0), 0.0).admitted
        assert not ctrl.decide(req(0.0, user=0, action=0, seq=1), 0.0).admitted
        # A different user has their own full bucket.
        assert ctrl.decide(req(0.0, user=1, action=1), 0.0).admitted

    def test_batch_consumes_tokens(self):
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=1.0))
        assert ctrl.decide(req(0.0, job_type=JobType.BATCH), 0.0).admitted
        assert not ctrl.decide(
            req(0.0, seq=1, job_type=JobType.BATCH), 0.0
        ).admitted


class TestSessionCap:
    def test_cap_binds_and_sticks(self):
        ctrl = AdmissionController(AdmissionConfig(max_sessions=1))
        assert ctrl.decide(req(0.0, action=0), 0.0).admitted
        rejected = ctrl.decide(req(0.1, action=1), 0.1)
        assert rejected is Decision.REJECT_SESSIONS
        # The whole rejected action stays rejected — a clean busy
        # signal, not a sub-framerate trickle.
        assert ctrl.decide(req(0.2, action=1, seq=1), 0.2) is (
            Decision.REJECT_SESSIONS
        )
        assert ctrl.rejected_action_ids == {1}

    def test_rejected_session_stays_out_after_ttl(self):
        ctrl = AdmissionController(
            AdmissionConfig(max_sessions=1, session_ttl=0.5)
        )
        assert ctrl.decide(req(0.0, action=0), 0.0).admitted
        assert not ctrl.decide(req(0.1, action=1), 0.1).admitted
        # Action 0 expired; a *new* action gets the freed slot, but the
        # rejected action 1 never comes back.
        assert not ctrl.decide(req(5.0, action=1, seq=2), 5.0).admitted
        assert ctrl.decide(req(5.0, action=2), 5.0).admitted

    def test_ttl_frees_slots(self):
        ctrl = AdmissionController(
            AdmissionConfig(max_sessions=1, session_ttl=0.5)
        )
        assert ctrl.decide(req(0.0, action=0), 0.0).admitted
        assert ctrl.active_sessions(0.0) == 1
        assert ctrl.active_sessions(1.0) == 0
        assert ctrl.decide(req(1.0, action=1), 1.0).admitted

    def test_batch_exempt_from_cap(self):
        ctrl = AdmissionController(AdmissionConfig(max_sessions=1))
        assert ctrl.decide(req(0.0, action=0), 0.0).admitted
        assert ctrl.decide(
            req(0.0, action=99, job_type=JobType.BATCH), 0.0
        ).admitted

    def test_cap_rejection_spares_token_budget(self):
        """A turned-away session must not drain its user's bucket."""
        ctrl = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1.0, max_sessions=1)
        )
        assert ctrl.decide(req(0.0, user=0, action=0), 0.0).admitted
        # User 1's new session is over the cap; their bucket is intact.
        assert not ctrl.decide(req(0.0, user=1, action=1), 0.0).admitted
        assert ctrl.decide(
            req(0.0, user=1, action=2, job_type=JobType.BATCH), 0.0
        ).admitted


class TestAccounting:
    def test_records_are_bounded(self):
        ctrl = AdmissionController(AdmissionConfig(max_sessions=1))
        ctrl.decide(req(0.0, action=0), 0.0)
        for i in range(AdmissionController.MAX_RECORDS + 100):
            ctrl.decide(req(0.1, action=1, seq=i), 0.1)
        assert len(ctrl.records) == AdmissionController.MAX_RECORDS
        # Exact totals survive past the record cap.
        assert ctrl.rejected_sessions == AdmissionController.MAX_RECORDS + 100

    def test_summary_and_rejected(self):
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=1.0))
        ctrl.decide(req(0.0), 0.0)
        ctrl.decide(req(0.0, seq=1), 0.0)
        assert ctrl.summary() == (1, 1, 0)
        assert ctrl.rejected == 1
        record = ctrl.records[0]
        assert record.decision is Decision.REJECT_RATE
        assert record.time == 0.0

    def test_metrics_published(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        ctrl = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1.0), metrics=registry
        )
        ctrl.decide(req(0.0), 0.0)
        ctrl.decide(req(0.0, seq=1), 0.0)
        assert registry.value("repro_frontend_admitted") == 1
        assert (
            registry.value(
                "repro_frontend_rejected", {"reason": "reject-rate"}
            )
            == 1
        )

"""End-to-end tests: the frontend inside real simulation runs."""

import pytest

from repro.frontend import (
    AdmissionConfig,
    BackpressureConfig,
    DegradeConfig,
    FrontendConfig,
    QueuePolicy,
)
from repro.obs.slo import SLObjective, SLOMonitor
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

OBJECTIVE = SLObjective(kind="latency", target=0.25, quantile=99.0)


def compliance(result):
    return SLOMonitor([OBJECTIVE]).evaluate(result)[0].compliant_fraction


def fingerprint(result):
    """Exact per-job outcome signature of a run."""
    return [
        (r.user, r.action, r.sequence, r.finish, r.latency)
        for r in result.collector.records
    ]


class TestTransparency:
    def test_no_frontend_attaches_nothing(self):
        result = run_simulation(make_scenario(2, scale=0.02), "OURS")
        assert result.frontend is None

    def test_empty_frontend_is_passthrough(self):
        """FrontendConfig() forwards everything and changes no outcome."""
        scenario = make_scenario(2, scale=0.02)
        plain = run_simulation(scenario, "OURS")
        fronted = run_simulation(
            scenario, "OURS", config=RunConfig(frontend=FrontendConfig())
        )
        assert fingerprint(fronted) == fingerprint(plain)
        assert fronted.interactive_fps == plain.interactive_fps
        assert fronted.jobs_completed == plain.jobs_completed
        stats = fronted.frontend
        assert stats is not None
        assert stats.forwarded == stats.requests_seen == plain.jobs_submitted
        assert stats.rejected == stats.shed == stats.frames_dropped == 0

    def test_unsaturated_protective_run_matches_plain(self):
        """At nominal load the protective policy never engages."""
        scenario = make_scenario(2, scale=0.02)
        plain = run_simulation(scenario, "OURS")
        protected = run_simulation(
            scenario,
            "OURS",
            config=RunConfig(
                frontend=FrontendConfig(
                    backpressure=BackpressureConfig(queue_limit=10_000)
                )
            ),
        )
        assert fingerprint(protected) == fingerprint(plain)
        assert protected.frontend.deferred == 0


class TestOverloadProtection:
    """The ISSUE acceptance scenario: Scenario 2 over-subscribed 2.5x."""

    LOAD = 2.5
    SCALE = 0.05

    @pytest.fixture(scope="class")
    def runs(self):
        protective = FrontendConfig.protective(max_sessions=8, queue_limit=32)
        out = {}
        for scheduler in ("OURS", "FCFSL"):
            scenario = make_scenario(2, scale=self.SCALE, load=self.LOAD)
            out[scheduler] = (
                run_simulation(scenario, scheduler),
                run_simulation(
                    scenario,
                    scheduler,
                    config=RunConfig(frontend=protective),
                ),
            )
        return out

    @pytest.mark.parametrize("scheduler", ["OURS", "FCFSL"])
    def test_slo_compliance_strictly_improves(self, runs, scheduler):
        baseline, protected = runs[scheduler]
        assert compliance(protected) > compliance(baseline)

    @pytest.mark.parametrize("scheduler", ["OURS", "FCFSL"])
    def test_admitted_work_gets_served(self, runs, scheduler):
        baseline, protected = runs[scheduler]
        # The unprotected service leaves a large backlog unfinished; the
        # frontend's admitted jobs essentially all complete.
        assert baseline.jobs_completed < 0.75 * baseline.jobs_submitted
        assert protected.jobs_completed >= 0.9 * protected.jobs_submitted

    @pytest.mark.parametrize("scheduler", ["OURS", "FCFSL"])
    def test_p99_latency_bounded(self, runs, scheduler):
        baseline, protected = runs[scheduler]
        assert (
            protected.interactive_latency.p99
            < 0.25 * baseline.interactive_latency.p99
        )

    @pytest.mark.parametrize("scheduler", ["OURS", "FCFSL"])
    def test_frontend_engaged_and_accounted(self, runs, scheduler):
        _, protected = runs[scheduler]
        stats = protected.frontend
        assert stats.requests_seen > stats.forwarded
        assert stats.forwarded == protected.jobs_submitted
        # Every path a request can take is accounted for.
        assert (
            stats.forwarded
            + stats.rejected
            + stats.shed
            + stats.frames_dropped
            + stats.unserved_at_end
            == stats.requests_seen
        )


class TestRejectedSessions:
    def test_rejected_actions_never_served(self):
        config = RunConfig(
            frontend=FrontendConfig(
                admission=AdmissionConfig(max_sessions=2, session_ttl=5.0)
            )
        )
        result = run_simulation(
            make_scenario(2, scale=0.05, load=2.5), "OURS", config=config
        )
        rejected = result.frontend.rejected_actions
        assert rejected  # the cap did bind
        served = {r.action for r in result.collector.records}
        assert not (rejected & served)


class TestDegradeOnlyRun:
    def test_resolution_degradation_reduces_chunks(self):
        """Degraded interactive jobs render fewer chunks (Defs. 1-2)."""
        config = RunConfig(
            frontend=FrontendConfig(
                degrade=DegradeConfig(
                    sample_interval=0.2,
                    patience=1,
                    step_down_burn=0.1,
                )
            )
        )
        result = run_simulation(
            make_scenario(2, scale=0.05, load=2.5), "OURS", config=config
        )
        stats = result.frontend
        assert stats.final_quality_level > 0
        assert stats.frames_dropped > 0
        assert stats.quality_changes
        assert stats.degraded_jobs > 0

    def test_degrade_queue_policy_runs(self):
        config = RunConfig(
            frontend=FrontendConfig(
                backpressure=BackpressureConfig(
                    queue_limit=16, policy=QueuePolicy.DEGRADE
                ),
                degrade=DegradeConfig(),
            )
        )
        result = run_simulation(
            make_scenario(2, scale=0.03, load=2.5), "OURS", config=config
        )
        assert result.frontend.final_quality_level > 0
        assert result.jobs_completed > 0

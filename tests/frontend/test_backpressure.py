"""Tests for the bounded head-node queue and its overflow policies."""

from repro.core.job import JobType
from repro.frontend.backpressure import BoundedQueue
from repro.frontend.config import BackpressureConfig, QueuePolicy
from repro.obs.metrics import MetricsRegistry
from repro.workload.trace import Request


def req(seq):
    return Request(float(seq), JobType.INTERACTIVE, "ds", 0, 0, seq)


class FakeService:
    """Just enough service: an outstanding-job count the queue reads."""

    def __init__(self):
        self.outstanding_jobs = 0


class Harness:
    def __init__(self, *, limit=2, policy=QueuePolicy.BLOCK, metrics=None):
        self.service = FakeService()
        self.forwarded = []
        self.overflows = 0
        self.queue = BoundedQueue(
            BackpressureConfig(queue_limit=limit, policy=policy),
            self.service,
            self._forward,
            metrics=metrics,
            on_overflow=self._overflow,
        )

    def _forward(self, request, dataset):
        self.forwarded.append(request.sequence)
        self.service.outstanding_jobs += 1

    def _overflow(self):
        self.overflows += 1

    def complete(self, n=1):
        self.service.outstanding_jobs -= n
        self.queue.drain()


class TestBlock:
    def test_forwards_below_limit(self):
        h = Harness(limit=2)
        h.queue.offer(req(0), None)
        h.queue.offer(req(1), None)
        assert h.forwarded == [0, 1]
        assert h.queue.waiting_count == 0

    def test_parks_at_limit_and_drains_fifo(self):
        h = Harness(limit=2)
        for i in range(5):
            h.queue.offer(req(i), None)
        assert h.forwarded == [0, 1]
        assert h.queue.waiting_count == 3
        assert h.queue.deferred == 3
        h.complete()
        assert h.forwarded == [0, 1, 2]
        h.complete(2)
        assert h.forwarded == [0, 1, 2, 3, 4]
        assert h.queue.waiting_count == 0

    def test_no_overtaking_while_waiting(self):
        """A request behind a parked one must not jump the queue."""
        h = Harness(limit=2)
        for i in range(3):
            h.queue.offer(req(i), None)
        # Capacity frees up but drain() hasn't run: a fresh offer still
        # queues behind request 2 rather than overtaking it.
        h.service.outstanding_jobs = 0
        h.queue.offer(req(3), None)
        assert h.forwarded == [0, 1]
        h.queue.drain()
        assert h.forwarded == [0, 1, 2, 3]

    def test_max_wait_depth_tracked(self):
        h = Harness(limit=1)
        for i in range(4):
            h.queue.offer(req(i), None)
        assert h.queue.max_wait_depth == 3


class TestShedding:
    def test_shed_newest_drops_incoming(self):
        h = Harness(limit=1, policy=QueuePolicy.SHED_NEWEST)
        h.queue.offer(req(0), None)  # forwarded
        h.queue.offer(req(1), None)  # parked (wait depth 1 == limit)
        h.queue.offer(req(2), None)  # dropped
        assert h.forwarded == [0]
        assert h.queue.waiting_count == 1
        assert h.queue.shed_newest == 1
        h.complete()
        assert h.forwarded == [0, 1]

    def test_shed_oldest_keeps_fresh_frames(self):
        h = Harness(limit=1, policy=QueuePolicy.SHED_OLDEST)
        h.queue.offer(req(0), None)  # forwarded
        h.queue.offer(req(1), None)  # parked
        h.queue.offer(req(2), None)  # evicts 1
        assert h.queue.shed_oldest == 1
        assert h.queue.waiting_count == 1
        h.complete()
        # The stale frame was dropped; the fresh one got served.
        assert h.forwarded == [0, 2]

    def test_shed_total(self):
        h = Harness(limit=1, policy=QueuePolicy.SHED_OLDEST)
        for i in range(4):
            h.queue.offer(req(i), None)
        assert h.queue.shed == h.queue.shed_oldest == 2


class TestDegradePolicy:
    def test_overflow_nudges_controller(self):
        h = Harness(limit=1, policy=QueuePolicy.DEGRADE)
        h.queue.offer(req(0), None)
        assert h.overflows == 0
        h.queue.offer(req(1), None)
        h.queue.offer(req(2), None)
        # Every parked request nudges; nothing is shed.
        assert h.overflows == 2
        assert h.queue.shed == 0
        assert h.queue.waiting_count == 2


class TestFlushAndMetrics:
    def test_flush_empties_queue(self):
        h = Harness(limit=1)
        for i in range(3):
            h.queue.offer(req(i), None)
        leftovers = h.queue.flush()
        assert [r.sequence for r, _ in leftovers] == [1, 2]
        assert h.queue.waiting_count == 0

    def test_metrics_published(self):
        registry = MetricsRegistry()
        h = Harness(limit=1, policy=QueuePolicy.SHED_OLDEST, metrics=registry)
        for i in range(3):
            h.queue.offer(req(i), None)
        assert registry.value("repro_frontend_wait_depth") == 1
        assert registry.value("repro_frontend_deferred") == 2
        assert (
            registry.value("repro_frontend_shed", {"which": "oldest"}) == 1
        )

"""Performance regression guards for the simulation core.

The guides' first rule is *measure*; these tests pin order-of-magnitude
throughput floors so an accidental O(n^2) in the hot paths (event loop,
LRU, tables) is caught by CI rather than by a 10x slower Scenario 4.
Thresholds are set ~10x below typical speeds to stay robust on slow CI
machines.
"""

import time

from repro.cluster.event_queue import EventQueue
from repro.cluster.memory import LRUChunkCache
from repro.core.chunks import Chunk
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


def test_event_queue_throughput():
    """The DES core sustains well over 100k events/second."""
    q = EventQueue()
    n = 50_000
    counter = [0]

    def bump():
        counter[0] += 1

    start = time.perf_counter()
    for i in range(n):
        q.schedule(i * 1e-6, bump)
    q.run()
    elapsed = time.perf_counter() - start
    assert counter[0] == n
    assert n / elapsed > 100_000, f"only {n / elapsed:.0f} events/s"


def test_lru_cache_throughput():
    """LRU operations sustain well over 100k ops/second."""
    cache = LRUChunkCache(100 * 100)
    chunks = [Chunk("ds", i, 100) for i in range(500)]
    n = 50_000
    start = time.perf_counter()
    for i in range(n):
        cache.insert(chunks[i % 500])
    elapsed = time.perf_counter() - start
    assert n / elapsed > 100_000, f"only {n / elapsed:.0f} ops/s"


def test_simulation_throughput():
    """A full OURS scenario run processes > 5k jobs/second of wall time.

    (Scenario 1 at full scale is 12k jobs; typical speed is 15-25k
    jobs/s, so this catches order-of-magnitude regressions only.)
    """
    scenario = scenario_1(scale=0.25)
    start = time.perf_counter()
    result = run_simulation(scenario, "OURS")
    elapsed = time.perf_counter() - start
    rate = result.jobs_submitted / elapsed
    assert rate > 5_000, f"only {rate:.0f} jobs/s"

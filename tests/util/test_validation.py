"""Tests for argument-validation helpers."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range_message_names_param(self):
        with pytest.raises(ValueError, match="alpha"):
            check_in_range("alpha", 2.0, 0.0, 1.0)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", 3, int) == 3

    def test_tuple_of_types(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_rejects_with_names(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "nope", int)

"""Tests for the seeded RNG helpers."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs, stable_hash32


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(8)
        b = make_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_reproducible(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_children_independent(self):
        children = spawn_rngs(0, 3)
        draws = [g.random(4).tolist() for g in children]
        assert draws[0] != draws[1] != draws[2]

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash32("a", 1) == stable_hash32("a", 1)

    def test_distinct(self):
        assert stable_hash32("a") != stable_hash32("b")

    def test_range(self):
        h = stable_hash32("anything", 123, (4, 5))
        assert 0 <= h < 2**32

"""Tests for byte/time unit helpers."""

import pytest

from repro.util.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    bytes_to_gib,
    bytes_to_mib,
    fmt_bytes,
    fmt_seconds,
)


class TestConstants:
    def test_progression(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB
        assert TiB == 1024 * GiB

    def test_paper_sizes(self):
        # Table II: 512 MiB chunks of a 2 GiB dataset → 4 chunks.
        assert (2 * GiB) // (512 * MiB) == 4
        # 8 GiB dataset → 16 chunks.
        assert (8 * GiB) // (512 * MiB) == 16


class TestConversions:
    def test_bytes_to_mib(self):
        assert bytes_to_mib(512 * MiB) == 512.0

    def test_bytes_to_gib(self):
        assert bytes_to_gib(3 * GiB) == 3.0

    def test_roundtrip_fraction(self):
        assert bytes_to_gib(512 * MiB) == pytest.approx(0.5)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2 * KiB, "2.0 KiB"),
            (512 * MiB, "512.0 MiB"),
            (3 * GiB, "3.0 GiB"),
            (2 * TiB, "2.0 TiB"),
        ],
    )
    def test_fmt_bytes(self, value, expected):
        assert fmt_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0 s"),
            (5e-6, "5.0 us"),
            (0.0305, "30.500 ms"),
            (2.5, "2.500 s"),
        ],
    )
    def test_fmt_seconds(self, value, expected):
        assert fmt_seconds(value) == expected

    def test_fmt_seconds_negative(self):
        assert fmt_seconds(-0.002) == "-2.000 ms"

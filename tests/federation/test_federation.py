"""End-to-end federation invariants: split exactness, merge
determinism, 1-shard bit-identity, serial-vs-pool parity, and the
locality-beats-hash cache effect the router exists for."""

import pytest

from repro.federation import (
    FederationConfig,
    build_shards,
    run_federation,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

SCALE = 0.05


def _scenario(number=2, users=2, **kwargs):
    return make_scenario(number, scale=SCALE, users=users, **kwargs)


class TestConfig:
    def test_defaults_valid(self):
        config = FederationConfig()
        assert config.shards == 2
        assert config.resolved_replication == "partition"

    def test_auto_replication_follows_router(self):
        assert (
            FederationConfig(router="hash").resolved_replication == "mirror"
        )
        assert (
            FederationConfig(router="locality").resolved_replication
            == "partition"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            dict(shards=0),
            dict(router="rr"),
            dict(replication="nope"),
            dict(workers=0),
            dict(frontend_scope="planet"),
        ],
    )
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            FederationConfig(**bad)

    def test_picklable(self):
        import pickle

        config = FederationConfig(shards=4, workers=2)
        assert pickle.loads(pickle.dumps(config)) == config


class TestBuildShards:
    def test_requests_conserved_exactly(self):
        scenario = _scenario()
        _, _, pairs = build_shards(scenario, FederationConfig(shards=3))
        key = lambda r: (r.time, r.user, r.action, r.sequence, r.dataset)
        split = [r for s, _ in pairs for r in s.trace.requests]
        assert sorted(split, key=key) == sorted(
            scenario.trace.requests, key=key
        )

    def test_users_never_split(self):
        scenario = _scenario()
        _, _, pairs = build_shards(scenario, FederationConfig(shards=3))
        seen = {}
        for index, (shard_scenario, _) in enumerate(pairs):
            for request in shard_scenario.trace.requests:
                assert seen.setdefault(request.user, index) == index

    def test_shard_configs_namespaced(self):
        scenario = _scenario()
        _, _, pairs = build_shards(scenario, FederationConfig(shards=3))
        assert [cfg.job_namespace for _, cfg in pairs] == [0, 1, 2]

    def test_shard_datasets_cover_referenced(self):
        scenario = _scenario()
        _, _, pairs = build_shards(
            scenario, FederationConfig(shards=3, router="hash")
        )
        for shard_scenario, _ in pairs:
            names = {ds.name for ds in shard_scenario.trace.datasets}
            assert {r.dataset for r in shard_scenario.trace.requests} <= names


class TestMergeDeterminism:
    def test_serial_and_pool_merges_identical(self):
        """workers=N is a pure wall-clock optimization: the merged
        FederatedResult digests bit-identically."""
        config = FederationConfig(shards=3, run=RunConfig(metrics=True))
        scenario = _scenario(users=3)
        serial = run_federation(scenario, "OURS", config)
        pooled = run_federation(
            scenario, "OURS", config.replace(workers=3)
        )
        assert serial.digest() == pooled.digest()
        assert serial.metric_totals() == pooled.metric_totals()

    def test_repeat_runs_identical(self):
        config = FederationConfig(shards=2)
        scenario = _scenario()
        assert (
            run_federation(scenario, "OURS", config).digest()
            == run_federation(scenario, "OURS", config).digest()
        )


class TestOneShardIdentity:
    def test_bit_identical_to_plain_run(self):
        """A 1-shard federation is the simulator, exactly: same
        assignment trace to the last bit, same merged summary."""
        scenario = _scenario(users=1)
        run_config = RunConfig(record_assignments=True)
        plain = run_simulation(scenario, "OURS", run_config)
        federated = run_federation(
            scenario, "OURS", FederationConfig(shards=1, run=run_config)
        )
        (shard,) = federated.shard_results
        assert (
            shard.assignment_trace_hash() == plain.assignment_trace_hash()
        )
        assert federated.records == plain.records
        # sched_cost_us is measured wall-clock — the one summary field
        # that is legitimately nondeterministic; everything else must
        # match to the bit.
        import dataclasses

        assert dataclasses.replace(
            federated.summary(), sched_cost_us=0.0
        ) == dataclasses.replace(plain.summary(), sched_cost_us=0.0)


class TestMergedView:
    def test_totals_sum_over_shards(self):
        result = run_federation(
            _scenario(), "OURS", FederationConfig(shards=2)
        )
        assert result.jobs_submitted == sum(
            r.jobs_submitted for r in result.shard_results
        )
        assert len(result.records) == result.jobs_completed

    def test_job_ids_never_collide(self):
        result = run_federation(
            _scenario(), "OURS", FederationConfig(shards=2)
        )
        ids = [r.job_id for r in result.records]
        assert len(ids) == len(set(ids))

    def test_merged_slo_denominators_sum(self):
        from repro.obs import SLObjective, SLOMonitor

        result = run_federation(
            _scenario(), "OURS", FederationConfig(shards=2)
        )
        objective = SLObjective.parse("fps=33.33")
        (merged,) = result.evaluate_slos([objective])
        per_shard = [
            SLOMonitor([objective]).evaluate(s)[0]
            for s in result.shard_results
        ]
        assert merged.actions_evaluated == sum(
            r.actions_evaluated for r in per_shard
        )
        assert merged.evaluated_time == pytest.approx(
            sum(r.evaluated_time for r in per_shard)
        )
        assert len(merged.violations) == sum(
            len(r.violations) for r in per_shard
        )

    def test_shard_table_renders(self):
        result = run_federation(
            _scenario(), "OURS", FederationConfig(shards=2)
        )
        table = result.shard_table()
        assert "shard" in table and "merged [locality/partition]" in table
        assert len(table.splitlines()) == 2 + 2 + 1  # header+rule+rows+footer


class TestFrontendScope:
    def test_global_scope_divides_caps(self):
        from repro.frontend import FrontendConfig

        scenario = _scenario(load=2.0)
        run = RunConfig(frontend=FrontendConfig.protective())
        result = run_federation(
            scenario,
            "OURS",
            FederationConfig(shards=2, run=run, frontend_scope="global"),
        )
        base = run.frontend.admission.max_sessions
        for shard in result.shard_results:
            cfg = shard.frontend.config
            assert cfg.admission.max_sessions == -(-base // 2)

    def test_conservation_identity_survives_merge(self):
        from repro.frontend import FrontendConfig

        scenario = _scenario(load=2.0)
        run = RunConfig(frontend=FrontendConfig.protective())
        result = run_federation(
            scenario,
            "OURS",
            FederationConfig(shards=2, run=run, frontend_scope="global"),
        )
        stats = result.frontend
        assert stats is not None
        accounted = (
            stats.forwarded
            + stats.rejected_rate
            + stats.rejected_sessions
            + stats.shed_oldest
            + stats.shed_newest
            + stats.frames_dropped
            + stats.unserved_at_end
        )
        assert accounted == stats.requests_seen


class TestLocalityBeatsHash:
    def test_locality_router_wins_on_cache_hits(self):
        """The point of the tier: routing users to their data's home
        shard keeps the Cache table warm; hash routing scatters them."""
        scenario = _scenario(users=2)
        locality = run_federation(
            scenario, "OURS", FederationConfig(shards=2, router="locality")
        )
        hashed = run_federation(
            scenario, "OURS", FederationConfig(shards=2, router="hash")
        )
        assert locality.hit_rate >= hashed.hit_rate
        assert (
            locality.summary().interactive_latency
            <= hashed.summary().interactive_latency
        )

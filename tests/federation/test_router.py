"""User->shard routing: consistent-hash ring and locality placement."""

import pytest

from repro.federation.replication import plan_replication
from repro.federation.router import (
    ConsistentHashRouter,
    LocalityRouter,
    make_router,
    stable_hash,
)
from repro.workload.scenarios import make_scenario


def _trace(number=2, scale=0.05, users=2):
    return make_scenario(number, scale=scale, users=users).trace


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("user-7") == stable_hash("user-7")

    def test_distinct_keys_differ(self):
        assert stable_hash("user-7") != stable_hash("user-8")

    def test_64_bit_range(self):
        value = stable_hash("anything")
        assert 0 <= value < 1 << 64


class TestConsistentHashRouter:
    def test_route_in_range_and_deterministic(self):
        router = ConsistentHashRouter(4)
        again = ConsistentHashRouter(4)
        for user in range(200):
            shard = router.route(user)
            assert 0 <= shard < 4
            assert shard == again.route(user)

    def test_all_shards_receive_users(self):
        router = ConsistentHashRouter(4)
        hit = {router.route(user) for user in range(500)}
        assert hit == {0, 1, 2, 3}

    def test_ring_growth_is_sticky(self):
        """Adding a shard must move only a minority of users."""
        small = ConsistentHashRouter(4)
        grown = ConsistentHashRouter(5)
        users = range(1000)
        moved = sum(1 for u in users if small.route(u) != grown.route(u))
        # Ideal is ~1/5 of users; allow generous slack, but far below a
        # modulo-style full reshuffle (~4/5).
        assert moved < 500

    def test_assign_covers_every_trace_user(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "mirror")
        table = ConsistentHashRouter(3).assign(trace, plan)
        users = {r.user for r in trace.requests}
        assert set(table.users_of(0) + table.users_of(1) + table.users_of(2)) == users
        assert sum(table.counts()) == len(users)


class TestLocalityRouter:
    def test_users_follow_their_dominant_dataset(self):
        trace = _trace()
        plan = plan_replication(trace, 2, "partition")
        table = LocalityRouter(2).assign(trace, plan)
        home = plan.home_map()
        shard_of = dict(table.assignments)
        for user in {r.user for r in trace.requests}:
            counts = {}
            for request in trace.requests:
                if request.user == user:
                    counts[request.dataset] = counts.get(request.dataset, 0) + 1
            best = max(counts.values())
            dominant_homes = {
                home[ds] for ds, n in counts.items() if n == best
            }
            assert shard_of[user] in dominant_homes

    def test_assign_deterministic(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "partition")
        first = LocalityRouter(3).assign(trace, plan)
        second = LocalityRouter(3).assign(trace, plan)
        assert first.assignments == second.assignments


class TestMakeRouter:
    def test_known_policies(self):
        assert isinstance(make_router("hash", 2), ConsistentHashRouter)
        assert isinstance(make_router("locality", 2), LocalityRouter)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="router"):
            make_router("roundrobin", 2)

"""Dataset homing across shards: mirror and demand-partitioned plans."""

import pytest

from repro.federation.replication import dataset_demand, plan_replication
from repro.workload.scenarios import make_scenario


def _trace(number=2, scale=0.05, users=2):
    return make_scenario(number, scale=scale, users=users).trace


class TestDatasetDemand:
    def test_counts_every_request(self):
        trace = _trace()
        demand = dataset_demand(trace)
        assert sum(demand.values()) == len(trace.requests)
        assert set(demand) == {ds.name for ds in trace.datasets}


class TestMirror:
    def test_every_shard_homes_everything(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "mirror")
        names = tuple(ds.name for ds in trace.datasets)
        assert plan.home == (names, names, names)

    def test_primary_homes_round_robin(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "mirror")
        for index, ds in enumerate(trace.datasets):
            assert plan.home_of(ds.name) == index % 3

    def test_replica_bytes_scale_with_shards(self):
        trace = _trace()
        one = plan_replication(trace, 1, "mirror").replica_bytes(trace)
        three = plan_replication(trace, 3, "mirror").replica_bytes(trace)
        assert three == 3 * one


class TestPartition:
    def test_disjoint_exact_cover(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "partition")
        homed = [name for shard in plan.home for name in shard]
        assert sorted(homed) == sorted(ds.name for ds in trace.datasets)
        assert len(homed) == len(set(homed))

    def test_demand_balanced(self):
        """The greedy LPT pack keeps the max-loaded shard within one
        largest-dataset demand of the min-loaded shard."""
        trace = _trace()
        plan = plan_replication(trace, 2, "partition")
        demand = dataset_demand(trace)
        loads = [
            sum(demand[name] for name in shard) for shard in plan.home
        ]
        assert max(loads) - min(loads) <= max(demand.values())

    def test_one_shard_preserves_suite_order(self):
        """A 1-shard partition is the original dataset list — the
        prewarm-order identity behind 1-shard bit-exactness."""
        trace = _trace()
        plan = plan_replication(trace, 1, "partition")
        assert plan.home == (tuple(ds.name for ds in trace.datasets),)

    def test_home_lists_keep_suite_order(self):
        trace = _trace()
        plan = plan_replication(trace, 3, "partition")
        suite = [ds.name for ds in trace.datasets]
        for shard in plan.home:
            indices = [suite.index(name) for name in shard]
            assert indices == sorted(indices)

    def test_deterministic(self):
        trace = _trace()
        assert plan_replication(trace, 3, "partition") == plan_replication(
            trace, 3, "partition"
        )


class TestValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            plan_replication(_trace(), 0, "mirror")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            plan_replication(_trace(), 2, "rackaware")

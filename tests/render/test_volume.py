"""Tests for volumes and brick decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.volume import Volume


def make_volume(shape=(9, 9, 9), seed=0):
    rng = np.random.default_rng(seed)
    return Volume(rng.random(shape).astype(np.float32))


class TestVolume:
    def test_validation(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            Volume(np.zeros((1, 4, 4)))

    def test_shape_and_bytes(self):
        vol = make_volume((4, 5, 6))
        assert vol.shape == (4, 5, 6)
        assert vol.nbytes == 4 * 5 * 6 * 4

    def test_bounds(self):
        vol = make_volume((4, 5, 6))
        lo, hi = vol.bounds()
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [3, 4, 5])

    def test_whole_brick_covers_everything(self):
        vol = make_volume((4, 5, 6))
        brick = vol.whole_brick()
        assert brick.lo == (0, 0, 0)
        assert brick.hi == (3, 4, 5)
        assert brick.data is vol.data


class TestBricks:
    def test_grid_count(self):
        vol = make_volume((9, 9, 9))
        assert len(vol.bricks((2, 2, 2))) == 8

    def test_ownership_partitions_base_cells(self):
        """Every base cell belongs to exactly one brick."""
        vol = make_volume((9, 7, 5))
        bricks = vol.bricks((2, 3, 1))
        pts = np.array(
            [
                [x + 0.5, y + 0.5, z + 0.5]
                for x in range(8)
                for y in range(6)
                for z in range(4)
            ]
        )
        owners = np.zeros(len(pts), dtype=int)
        for b in bricks:
            owners += b.contains(pts).astype(int)
        assert np.all(owners == 1)

    def test_ghost_layer_data(self):
        """Brick data includes the +1 vertex so local interpolation of
        owned points matches the global field."""
        vol = make_volume((9, 9, 9))
        for b in vol.bricks((2, 2, 2)):
            expected_shape = tuple(h - l + 1 for l, h in zip(b.lo, b.hi))
            assert b.data.shape == expected_shape
            sl = tuple(slice(l, h + 1) for l, h in zip(b.lo, b.hi))
            assert np.array_equal(b.data, vol.data[sl])

    def test_too_many_bricks_rejected(self):
        vol = make_volume((4, 4, 4))
        with pytest.raises(ValueError, match="cannot split"):
            vol.bricks((4, 1, 1))  # only 3 base cells on axis 0

    def test_brick_centers_inside_bounds(self):
        vol = make_volume((9, 9, 9))
        for b in vol.bricks((2, 2, 2)):
            c = b.center()
            assert np.all(c >= 0) and np.all(c <= 8)


class TestSplitForRanks:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 6, 8, 12, 16])
    def test_exact_rank_count(self, ranks):
        vol = make_volume((17, 17, 17))
        assert len(vol.split_for_ranks(ranks)) == ranks

    def test_prefers_long_axes(self):
        vol = make_volume((33, 5, 5))
        bricks = vol.split_for_ranks(4)
        # All cuts land on the long x axis.
        xs = {b.index[0] for b in bricks}
        assert len(xs) == 4

    @given(st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_property_ownership_partition(self, ranks):
        vol = make_volume((17, 13, 11))
        bricks = vol.split_for_ranks(ranks)
        rng = np.random.default_rng(1)
        pts = rng.uniform([0, 0, 0], [15.999, 11.999, 9.999], size=(300, 3))
        owners = np.zeros(len(pts), dtype=int)
        for b in bricks:
            owners += b.contains(pts).astype(int)
        assert np.all(owners == 1)


class TestMargins:
    def test_margin_widens_data(self):
        vol = make_volume((9, 9, 9))
        plain = vol.bricks((2, 2, 2))
        wide = vol.bricks((2, 2, 2), margin=1)
        for a, b in zip(plain, wide):
            assert a.lo == b.lo and a.hi == b.hi
            assert b.data.shape >= a.data.shape
            # Origin moves down by one where not clamped at the volume.
            for axis in range(3):
                expected = max(0, a.lo[axis] - 1)
                assert b.origin[axis] == expected

    def test_margin_clamped_at_volume_edges(self):
        vol = make_volume((9, 9, 9))
        for brick in vol.bricks((2, 2, 2), margin=3):
            for axis in range(3):
                assert brick.origin[axis] >= 0
                end = brick.origin[axis] + brick.data.shape[axis]
                assert end <= vol.shape[axis]

    def test_margin_data_matches_global(self):
        vol = make_volume((9, 9, 9))
        for b in vol.bricks((2, 2, 2), margin=1):
            sl = tuple(
                slice(o, o + s) for o, s in zip(b.origin, b.data.shape)
            )
            assert np.array_equal(b.data, vol.data[sl])

    def test_negative_margin_rejected(self):
        vol = make_volume((9, 9, 9))
        with pytest.raises(ValueError, match="margin"):
            vol.bricks((2, 2, 2), margin=-1)

    def test_covers_point_range(self):
        vol = make_volume((9, 9, 9))
        brick = vol.bricks((2, 2, 2), margin=1)[7]  # high corner brick
        assert brick.covers_point_range(brick.lo, [h - 0.01 for h in brick.hi])
        assert not brick.covers_point_range([0.0, 0.0, 0.0], brick.lo)

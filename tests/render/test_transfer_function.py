"""Tests for transfer functions."""

import numpy as np
import pytest

from repro.render.transfer_function import (
    TransferFunction,
    cool_warm,
    fire,
    grayscale_ramp,
    isosurface_like,
)


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            TransferFunction(points=((0.0, (0, 0, 0, 0)),))

    def test_sorted_scalars_required(self):
        with pytest.raises(ValueError, match="sorted"):
            TransferFunction(
                points=((0.5, (0, 0, 0, 0)), (0.2, (1, 1, 1, 1)))
            )

    def test_component_bounds(self):
        with pytest.raises(ValueError):
            TransferFunction(points=((0.0, (0, 0, 0, 0)), (1.0, (2, 0, 0, 0))))

    def test_scalar_bounds(self):
        with pytest.raises(ValueError):
            TransferFunction(points=((-0.1, (0, 0, 0, 0)), (1.0, (0, 0, 0, 0))))


class TestEvaluation:
    def test_endpoints(self):
        tf = grayscale_ramp(max_opacity=0.5)
        assert np.allclose(tf(np.array([0.0])), [[0, 0, 0, 0]])
        assert np.allclose(tf(np.array([1.0])), [[1, 1, 1, 0.5]])

    def test_linear_midpoint(self):
        tf = grayscale_ramp(max_opacity=1.0)
        assert np.allclose(tf(np.array([0.5])), [[0.5, 0.5, 0.5, 0.5]])

    def test_clamping(self):
        tf = grayscale_ramp()
        assert np.allclose(tf(np.array([-5.0])), tf(np.array([0.0])))
        assert np.allclose(tf(np.array([5.0])), tf(np.array([1.0])))

    def test_lut_matches_exact_eval(self):
        tf = fire()
        lut = tf.lut()
        grid = np.linspace(0, 1, tf.resolution)
        exact = tf(grid)
        assert np.allclose(lut, exact, atol=1e-6)

    def test_lut_shape_dtype(self):
        lut = cool_warm().lut()
        assert lut.shape == (256, 4)
        assert lut.dtype == np.float32

    def test_preserves_input_shape(self):
        tf = fire()
        out = tf(np.zeros((4, 5)))
        assert out.shape == (4, 5, 4)


class TestPresets:
    @pytest.mark.parametrize("factory", [grayscale_ramp, fire, cool_warm])
    def test_presets_valid(self, factory):
        tf = factory()
        lut = tf.lut()
        assert np.all(lut >= 0) and np.all(lut <= 1)

    def test_isosurface_peak(self):
        tf = isosurface_like(0.5, width=0.05, opacity=0.8)
        assert tf(np.array([0.5]))[0, 3] == pytest.approx(0.8)
        assert tf(np.array([0.3]))[0, 3] == pytest.approx(0.0)
        assert tf(np.array([0.7]))[0, 3] == pytest.approx(0.0)

    def test_isosurface_level_validation(self):
        with pytest.raises(ValueError):
            isosurface_like(0.0)

    def test_isosurface_high_level_clamps(self):
        tf = isosurface_like(0.99, width=0.05)
        assert tf(np.array([1.0]))[0, 3] > 0

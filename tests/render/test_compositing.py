"""Tests for sort-last compositing, incl. property-based equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.communicator import SimCommunicator
from repro.render.compositing import (
    binary_swap,
    composite,
    direct_send,
    factorize_2_3,
    largest_2_3_smooth_leq,
    two_three_swap,
)
from repro.render.image import composite_sequence, max_channel_difference


def random_images(p, h=12, w=7, seed=0):
    """Premultiplied RGBA stack: color channels bounded by alpha."""
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(p):
        alpha = rng.uniform(0, 1, size=(h, w, 1)).astype(np.float32)
        rgb = rng.uniform(0, 1, size=(h, w, 3)).astype(np.float32) * alpha
        images.append(np.concatenate([rgb, alpha], axis=-1))
    return images


class TestFactorization:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, []), (2, [2]), (3, [3]), (6, [3, 2]), (12, [3, 2, 2]), (9, [3, 3])],
    )
    def test_smooth(self, n, expected):
        assert factorize_2_3(n) == expected

    @pytest.mark.parametrize("n", [5, 7, 10, 11, 13, 14])
    def test_non_smooth(self, n):
        assert factorize_2_3(n) is None

    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (5, 4), (7, 6), (10, 9), (100, 96)]
    )
    def test_largest_smooth(self, n, expected):
        assert largest_2_3_smooth_leq(n) == expected


class TestEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_binary_swap_matches_reference(self, p):
        images = random_images(p)
        reference = composite_sequence(images)
        result = binary_swap(images)
        assert max_channel_difference(reference, result.image) < 1e-5

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13])
    def test_two_three_swap_matches_reference(self, p):
        images = random_images(p, seed=p)
        reference = composite_sequence(images)
        result = two_three_swap(images)
        assert max_channel_difference(reference, result.image) < 1e-5

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_direct_send_matches_reference(self, p):
        images = random_images(p, seed=p + 50)
        reference = composite_sequence(images)
        result = direct_send(images)
        assert max_channel_difference(reference, result.image) < 1e-5

    @given(
        p=st.integers(1, 10),
        h=st.integers(1, 16),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_all_algorithms_agree(self, p, h, seed):
        images = random_images(p, h=h, w=3, seed=seed)
        reference = composite_sequence(images)
        for algo in ("direct-send", "2-3-swap"):
            result = composite(images, algorithm=algo)
            assert max_channel_difference(reference, result.image) < 1e-5


class TestProtocol:
    def test_binary_swap_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            binary_swap(random_images(6))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            composite(random_images(2), algorithm="magic")

    def test_mismatched_shapes(self):
        images = random_images(2)
        images[1] = images[1][:-1]
        with pytest.raises(ValueError, match="shapes differ"):
            binary_swap(images)

    def test_empty(self):
        with pytest.raises(ValueError):
            composite([])

    def test_small_communicator_rejected(self):
        with pytest.raises(ValueError, match="communicator"):
            binary_swap(random_images(4), comm=SimCommunicator(2))


class TestTraffic:
    def test_binary_swap_message_count(self):
        """p log2(p) exchange messages + (p-1) gather messages."""
        p = 8
        result = binary_swap(random_images(p))
        exchange = p * int(np.log2(p))
        assert result.messages == exchange + (p - 1)

    def test_direct_send_message_count(self):
        p = 5
        result = direct_send(random_images(p))
        assert result.messages == p * (p - 1) + (p - 1)

    def test_binary_swap_faster_than_serial_gather(self):
        """The reason swap algorithms exist: compositing time is
        O(log p) stages of shrinking pieces, not a serial gather of
        p-1 full images at the root."""
        p = 8
        # Large image so bandwidth (not per-message latency) dominates;
        # at tiny image sizes serial gather wins on message count.
        images = random_images(p, h=512, w=256)
        bs = binary_swap(images)
        spec = SimCommunicator(p).interconnect.spec
        serial_gather = (p - 1) * spec.transfer_time(images[0].nbytes)
        assert bs.elapsed < serial_gather

    def test_swap_receive_load_balanced(self):
        """Every rank's per-stage receive volume shrinks geometrically;
        total bytes grow ~linearly in p (each rank ~1 image)."""
        images8 = random_images(8, h=32, w=32)
        images4 = random_images(4, h=32, w=32)
        b8 = binary_swap(images8)
        b4 = binary_swap(images4)
        per_rank8 = b8.bytes_sent / 8
        per_rank4 = b4.bytes_sent / 4
        assert per_rank8 < 1.6 * per_rank4

    def test_stage_counts(self):
        assert binary_swap(random_images(8)).stages == 3 + 1  # + gather
        assert direct_send(random_images(8)).stages == 2

    def test_elapsed_positive(self):
        assert two_three_swap(random_images(6)).elapsed > 0

    def test_single_image_no_traffic(self):
        result = composite(random_images(1))
        assert result.messages == 0
        assert result.bytes_sent == 0


class TestShortImages:
    def test_more_ranks_than_rows(self):
        """Row regions degenerate to empty slices without error."""
        images = random_images(8, h=3, w=4, seed=2)
        reference = composite_sequence(images)
        for algo in ("direct-send", "2-3-swap", "binary-swap"):
            result = composite(images, algorithm=algo)
            assert max_channel_difference(reference, result.image) < 1e-5


class TestSerialGather:
    from repro.render.compositing import serial_gather as _sg  # noqa

    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_matches_reference(self, p):
        from repro.render.compositing import serial_gather

        images = random_images(p, seed=p + 90)
        reference = composite_sequence(images)
        result = serial_gather(images)
        assert max_channel_difference(reference, result.image) < 1e-5

    def test_message_count(self):
        from repro.render.compositing import serial_gather

        result = serial_gather(random_images(6))
        assert result.messages == 5
        assert result.stages == 1

    def test_root_link_is_the_bottleneck(self):
        """Serial gather's elapsed time is the sum of p-1 full-image
        transfers into one link — worse than 2-3 swap at scale."""
        from repro.render.compositing import serial_gather, two_three_swap

        images = random_images(16, h=128, w=128)
        sg = serial_gather(images)
        tts = two_three_swap(images)
        assert tts.elapsed < sg.elapsed

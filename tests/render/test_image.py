"""Tests for image utilities: over operator, display, PPM output."""

import numpy as np
import pytest

from repro.render.image import (
    composite_sequence,
    max_channel_difference,
    over,
    to_display,
    to_uint8,
    write_ppm,
)


def solid(rgba, h=2, w=2):
    img = np.zeros((h, w, 4), dtype=np.float32)
    img[:] = rgba
    return img


class TestOver:
    def test_opaque_front_wins(self):
        front = solid((1, 0, 0, 1))
        back = solid((0, 1, 0, 1))
        assert np.allclose(over(front, back), front)

    def test_transparent_front_passes_back(self):
        front = solid((0, 0, 0, 0))
        back = solid((0, 0.5, 0, 0.5))
        assert np.allclose(over(front, back), back)

    def test_half_blend(self):
        front = solid((0.5, 0, 0, 0.5))  # premultiplied red at 50%
        back = solid((0, 1, 0, 1))
        out = over(front, back)
        assert np.allclose(out[0, 0], [0.5, 0.5, 0, 1.0])

    def test_associativity(self):
        """over(a, over(b, c)) == over(over(a, b), c) — the property
        every compositing algorithm relies on."""
        rng = np.random.default_rng(0)
        imgs = []
        for _ in range(3):
            a = rng.uniform(0, 1, (4, 4, 1)).astype(np.float64)
            rgb = rng.uniform(0, 1, (4, 4, 3)) * a
            imgs.append(np.concatenate([rgb, a], axis=-1))
        a, b, c = imgs
        left = over(over(a, b), c)
        right = over(a, over(b, c))
        assert np.allclose(left, right, atol=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            over(solid((0, 0, 0, 0), h=2), solid((0, 0, 0, 0), h=3))


class TestCompositeSequence:
    def test_single(self):
        img = solid((0.2, 0.3, 0.1, 0.4))
        assert np.allclose(composite_sequence([img]), img)

    def test_matches_manual_fold(self):
        rng = np.random.default_rng(1)
        imgs = []
        for _ in range(4):
            a = rng.uniform(0, 1, (3, 3, 1))
            imgs.append(
                np.concatenate([rng.uniform(0, 1, (3, 3, 3)) * a, a], axis=-1)
            )
        manual = imgs[0]
        for nxt in imgs[1:]:
            manual = over(manual, nxt)
        assert np.allclose(composite_sequence(imgs), manual, atol=1e-6)

    def test_empty(self):
        with pytest.raises(ValueError):
            composite_sequence([])


class TestDisplay:
    def test_to_display_background(self):
        img = solid((0, 0, 0, 0))
        assert np.allclose(to_display(img, background=0.25), 0.25)

    def test_to_uint8_range(self):
        img = solid((1, 1, 1, 1))
        out = to_uint8(img)
        assert out.dtype == np.uint8
        assert np.all(out == 255)

    def test_max_channel_difference(self):
        a = solid((0, 0, 0, 0))
        b = solid((0.5, 0, 0, 0))
        assert max_channel_difference(a, b) == pytest.approx(0.5)


class TestPPM:
    def test_write_and_header(self, tmp_path):
        img = solid((1, 0, 0, 1), h=3, w=5)
        path = write_ppm(tmp_path / "out.ppm", img)
        data = path.read_bytes()
        assert data.startswith(b"P6\n5 3\n255\n")
        pixels = data.split(b"255\n", 1)[1]
        assert len(pixels) == 3 * 5 * 3
        assert pixels[0:3] == b"\xff\x00\x00"

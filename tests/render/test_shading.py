"""Tests for gradient-based Blinn-Phong shading."""

import numpy as np
import pytest

from repro.render.camera import default_camera_for
from repro.render.datasets import supernova
from repro.render.image import max_channel_difference
from repro.render.raycast import render_volume
from repro.render.shading import Lighting, gradient, shade
from repro.render.sortlast import render_sort_last
from repro.render.transfer_function import cool_warm
from repro.render.volume import Volume


def linear_volume(shape=(8, 8, 8), coeffs=(0.05, 0.02, 0.01)):
    x, y, z = np.meshgrid(*(np.arange(s) for s in shape), indexing="ij")
    a, b, c = coeffs
    return Volume((a * x + b * y + c * z).astype(np.float32))


class TestLightingValidation:
    def test_defaults_valid(self):
        Lighting()

    @pytest.mark.parametrize(
        "kwargs",
        [{"ambient": -0.1}, {"diffuse": 2.0}, {"shininess": 0}, {"gradient_floor": -1}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Lighting(**kwargs)


class TestGradient:
    def test_linear_field_exact(self):
        vol = linear_volume()
        brick = vol.whole_brick()
        rng = np.random.default_rng(0)
        pts = rng.uniform(1.5, 5.5, size=(40, 3))
        grads = gradient(brick, pts)
        assert np.allclose(grads, [0.05, 0.02, 0.01], atol=1e-10)

    def test_boundary_one_sided(self):
        """Clamped differences at the volume edge remain finite and
        directionally correct for a monotone field."""
        vol = linear_volume()
        brick = vol.whole_brick()
        pts = np.array([[0.0, 0.0, 0.0], [6.9, 6.9, 6.9]])
        grads = gradient(brick, pts)
        assert np.all(grads > 0)
        assert np.all(np.isfinite(grads))

    def test_brick_gradients_match_monolithic(self):
        vol = supernova((16, 16, 16))
        whole = vol.whole_brick()
        rng = np.random.default_rng(1)
        for brick in vol.bricks((2, 2, 2), margin=1):
            lo = np.asarray(brick.lo) + 0.01
            hi = np.asarray(brick.hi) - 0.01
            pts = rng.uniform(lo, np.maximum(hi, lo + 1e-6), size=(30, 3))
            g_brick = gradient(brick, pts)
            g_whole = gradient(whole, pts)
            assert np.allclose(g_brick, g_whole, atol=1e-6)


class TestShade:
    def _pack(self, n=5, seed=0):
        rng = np.random.default_rng(seed)
        rgb = rng.uniform(0.2, 0.8, (n, 3))
        grads = rng.normal(size=(n, 3))
        views = rng.normal(size=(n, 3))
        views /= np.linalg.norm(views, axis=1, keepdims=True)
        return rgb, grads, views

    def test_output_bounded(self):
        rgb, grads, views = self._pack()
        out = shade(rgb, grads, views, Lighting())
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_zero_gradient_unshaded(self):
        rgb = np.array([[0.5, 0.4, 0.3]])
        grads = np.zeros((1, 3))
        views = np.array([[0.0, 0.0, 1.0]])
        out = shade(rgb, grads, views, Lighting())
        assert np.allclose(out, rgb)

    def test_headlight_facing_surface_brighter_than_ambient(self):
        rgb = np.array([[0.5, 0.5, 0.5]])
        views = np.array([[0.0, 0.0, 1.0]])
        grads = np.array([[0.0, 0.0, 1.0]])  # normal along view
        lit = shade(rgb, grads, views, Lighting(ambient=0.2, diffuse=0.6, specular=0.0))
        assert np.all(lit < rgb)  # 0.8 x base < base
        assert np.allclose(lit, 0.5 * 0.8)

    def test_grazing_surface_darker_than_facing(self):
        rgb = np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]])
        views = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 1.0]])
        grads = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        out = shade(rgb, grads, views, Lighting(specular=0.0))
        assert out[0, 0] > out[1, 0]

    def test_fixed_light_direction(self):
        rgb = np.array([[0.5, 0.5, 0.5]])
        views = np.array([[0.0, 0.0, 1.0]])
        grads = np.array([[-1.0, 0.0, 0.0]])  # normal +x
        toward = shade(
            rgb, grads, views, Lighting(light_direction=(1, 0, 0), specular=0.0)
        )
        away = shade(
            rgb, grads, views, Lighting(light_direction=(0, 1, 0), specular=0.0)
        )
        assert toward[0, 0] > away[0, 0]


class TestShadedRendering:
    def test_shaded_differs_from_unshaded(self):
        vol = supernova((16, 16, 16))
        cam = default_camera_for(vol.shape, width=24, height=24)
        tf = cool_warm()
        plain = render_volume(vol, cam, tf, step=1.0)
        lit = render_volume(vol, cam, tf, step=1.0, lighting=Lighting())
        assert max_channel_difference(plain, lit) > 0.01
        # Alpha is untouched by shading.
        assert np.allclose(plain[..., 3], lit[..., 3])

    @pytest.mark.parametrize("ranks", [2, 3, 6])
    def test_shaded_sortlast_matches_monolithic(self, ranks):
        vol = supernova((20, 20, 20))
        cam = default_camera_for(vol.shape, width=24, height=24)
        tf = cool_warm()
        mono = render_volume(vol, cam, tf, step=0.9, lighting=Lighting())
        result = render_sort_last(
            vol, cam, tf, ranks=ranks, step=0.9, lighting=Lighting()
        )
        assert max_channel_difference(mono, result.image) < 1e-5

    def test_marginless_brick_rejected(self):
        from repro.render.raycast import integrate_brick

        vol = supernova((16, 16, 16))
        cam = default_camera_for(vol.shape, width=8, height=8)
        interior = vol.bricks((2, 2, 2))[7]  # margin=0, lo > 0
        with pytest.raises(ValueError, match="margin"):
            integrate_brick(interior, cam, cool_warm(), lighting=Lighting())

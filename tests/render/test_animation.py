"""Tests for orbit paths and animation rendering."""

import numpy as np
import pytest

from repro.render.animation import AnimationResult, OrbitPath, render_animation
from repro.render.datasets import supernova
from repro.render.transfer_function import cool_warm


class TestOrbitPath:
    def test_frame_count(self):
        cams = OrbitPath(frames=8).cameras((16, 16, 16))
        assert len(cams) == 8

    def test_full_sweep_no_duplicate_endpoint(self):
        cams = OrbitPath(frames=4, azimuth_start=0, azimuth_end=360).cameras(
            (16, 16, 16)
        )
        assert [c.azimuth for c in cams] == [0.0, 90.0, 180.0, 270.0]

    def test_elevation_swing(self):
        cams = OrbitPath(
            frames=4, elevation=20.0, elevation_swing=10.0
        ).cameras((16, 16, 16))
        elevations = [c.elevation for c in cams]
        assert elevations[0] == pytest.approx(20.0)
        assert elevations[1] == pytest.approx(30.0)
        assert elevations[3] == pytest.approx(10.0)

    def test_camera_overrides(self):
        cams = OrbitPath(frames=2).cameras((16, 16, 16), width=32, height=24)
        assert cams[0].width == 32 and cams[0].height == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            OrbitPath(frames=0)


class TestRenderAnimation:
    @pytest.fixture(scope="class")
    def volume(self):
        return supernova((16, 16, 16))

    def test_basic_run(self, volume):
        result = render_animation(
            volume,
            OrbitPath(frames=3),
            cool_warm(),
            ranks=2,
            width=16,
            height=16,
            step=1.2,
        )
        assert isinstance(result, AnimationResult)
        assert result.frames == 3
        assert result.total_samples > 0
        assert result.total_messages > 0
        assert result.paths == []

    def test_frames_differ(self, volume):
        frames = {}
        render_animation(
            volume,
            OrbitPath(frames=3),
            cool_warm(),
            ranks=2,
            width=16,
            height=16,
            step=1.2,
            on_frame=lambda i, img: frames.__setitem__(i, img.copy()),
        )
        assert len(frames) == 3
        assert not np.allclose(frames[0], frames[1])

    def test_writes_ppm_files(self, volume, tmp_path):
        result = render_animation(
            volume,
            OrbitPath(frames=2),
            cool_warm(),
            ranks=2,
            width=12,
            height=12,
            step=1.5,
            output_dir=tmp_path / "anim",
        )
        assert len(result.paths) == 2
        for path in result.paths:
            assert path.exists()
            assert path.read_bytes().startswith(b"P6\n12 12\n255\n")

    def test_shaded_animation(self, volume):
        from repro.render.shading import Lighting

        result = render_animation(
            volume,
            OrbitPath(frames=2),
            cool_warm(),
            ranks=3,
            width=12,
            height=12,
            step=1.5,
            lighting=Lighting(),
        )
        assert result.frames == 2

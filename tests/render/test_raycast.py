"""Tests for the ray-casting integrator."""

import numpy as np
import pytest

from repro.render.camera import Camera, default_camera_for
from repro.render.raycast import (
    RenderStats,
    brick_depth,
    integrate_brick,
    render_volume,
    trilinear,
)
from repro.render.transfer_function import TransferFunction, grayscale_ramp
from repro.render.volume import Volume


class TestTrilinear:
    def test_exact_at_vertices(self):
        rng = np.random.default_rng(0)
        data = rng.random((4, 4, 4)).astype(np.float32)
        pts = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        out = trilinear(data, pts)
        assert out[0] == pytest.approx(data[1, 2, 3])
        assert out[1] == pytest.approx(data[0, 0, 0])

    def test_linear_field_reproduced(self):
        """Trilinear interpolation is exact for (tri)linear fields."""
        x, y, z = np.meshgrid(
            np.arange(5), np.arange(5), np.arange(5), indexing="ij"
        )
        data = (0.1 * x + 0.02 * y + 0.005 * z).astype(np.float64)
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 3.999, size=(50, 3))
        expected = 0.1 * pts[:, 0] + 0.02 * pts[:, 1] + 0.005 * pts[:, 2]
        assert np.allclose(trilinear(data, pts), expected, atol=1e-12)

    def test_midpoint_average(self):
        data = np.zeros((2, 2, 2))
        data[1, 1, 1] = 1.0
        out = trilinear(data, np.array([[0.5, 0.5, 0.5]]))
        assert out[0] == pytest.approx(0.125)


def small_volume(value=1.0, shape=(8, 8, 8)):
    return Volume(np.full(shape, value, dtype=np.float32))


def ortho_cam(shape, n=16):
    return default_camera_for(shape, width=n, height=n, mode="ortho")


class TestIntegration:
    def test_empty_volume_transparent(self):
        vol = small_volume(0.0)
        tf = grayscale_ramp()
        img = render_volume(vol, ortho_cam(vol.shape), tf)
        assert np.all(img == 0)

    def test_dense_volume_opaque_center(self):
        vol = small_volume(1.0)
        tf = TransferFunction(
            points=((0.0, (1, 1, 1, 0.9)), (1.0, (1, 1, 1, 0.9)))
        )
        img = render_volume(vol, ortho_cam(vol.shape), tf, step=0.5)
        h, w = img.shape[:2]
        assert img[h // 2, w // 2, 3] > 0.99

    def test_alpha_bounded(self):
        rng = np.random.default_rng(0)
        vol = Volume(rng.random((8, 8, 8)).astype(np.float32))
        img = render_volume(vol, ortho_cam(vol.shape), grayscale_ramp())
        assert np.all(img[..., 3] <= 1.0 + 1e-6)
        assert np.all(img >= 0.0)

    def test_premultiplied_color_bounded_by_alpha(self):
        rng = np.random.default_rng(0)
        vol = Volume(rng.random((8, 8, 8)).astype(np.float32))
        img = render_volume(vol, ortho_cam(vol.shape), grayscale_ramp())
        for ch in range(3):
            assert np.all(img[..., ch] <= img[..., 3] + 1e-5)

    def test_camera_outside_misses_nothing_behind(self):
        """A camera aimed away from the volume sees nothing."""
        vol = small_volume(1.0)
        c = Camera(
            center=(100.0, 100.0, 100.0),
            distance=5.0,
            width=8,
            height=8,
            view_size=4.0,
        )
        img = integrate_brick(vol.whole_brick(), c, grayscale_ramp())
        assert np.all(img == 0)

    def test_smaller_step_converges(self):
        rng = np.random.default_rng(2)
        vol = Volume(rng.random((10, 10, 10)).astype(np.float32))
        cam = ortho_cam(vol.shape, n=12)
        tf = grayscale_ramp()
        coarse = render_volume(vol, cam, tf, step=1.0)
        fine = render_volume(vol, cam, tf, step=0.5)
        finer = render_volume(vol, cam, tf, step=0.25)
        err1 = np.abs(coarse - finer).mean()
        err2 = np.abs(fine - finer).mean()
        assert err2 < err1

    def test_early_termination_close_to_exact(self):
        vol = small_volume(1.0)
        cam = ortho_cam(vol.shape)
        tf = TransferFunction(
            points=((0.0, (1, 0, 0, 0.8)), (1.0, (1, 0, 0, 0.8)))
        )
        exact = render_volume(vol, cam, tf, step=0.5)
        fast = render_volume(vol, cam, tf, step=0.5, early_termination=0.999)
        assert np.abs(exact - fast).max() < 5e-3

    def test_stats_counted(self):
        vol = small_volume(1.0)
        stats = RenderStats()
        render_volume(vol, ortho_cam(vol.shape), grayscale_ramp(), stats=stats)
        assert stats.rays == 16 * 16
        assert stats.samples > 0
        assert stats.steps > 0

    def test_invalid_args(self):
        vol = small_volume()
        cam = ortho_cam(vol.shape)
        with pytest.raises(ValueError):
            render_volume(vol, cam, grayscale_ramp(), step=0.0)
        with pytest.raises(ValueError):
            render_volume(vol, cam, grayscale_ramp(), early_termination=0.0)


class TestBrickDepth:
    def test_front_brick_has_smaller_depth(self):
        rng = np.random.default_rng(0)
        vol = Volume(rng.random((9, 9, 9)).astype(np.float32))
        cam = Camera(center=(4, 4, 4), distance=30.0, azimuth=0.0, elevation=0.0)
        bricks = vol.bricks((2, 1, 1))
        # Camera sits on +x; the brick with larger x is closer.
        d0 = brick_depth(bricks[0], cam)
        d1 = brick_depth(bricks[1], cam)
        assert d1 < d0

"""Tests for sort-last rendering equivalence and synthetic datasets."""

import numpy as np
import pytest

from repro.render.camera import default_camera_for
from repro.render.datasets import (
    DATASET_NAMES,
    combustion,
    make_volume,
    plume,
    supernova,
    value_noise,
)
from repro.render.image import max_channel_difference
from repro.render.raycast import render_volume
from repro.render.sortlast import render_sort_last
from repro.render.transfer_function import cool_warm, fire, grayscale_ramp


class TestSortLastEquivalence:
    """The headline substrate property: parallel == monolithic."""

    @pytest.mark.parametrize("ranks,algo", [
        (2, "binary-swap"),
        (4, "binary-swap"),
        (3, "2-3-swap"),
        (6, "2-3-swap"),
        (5, "2-3-swap"),
        (7, "2-3-swap"),
        (4, "direct-send"),
    ])
    def test_matches_monolithic(self, ranks, algo):
        vol = supernova((24, 24, 24))
        cam = default_camera_for(vol.shape, width=32, height=32, mode="ortho")
        tf = cool_warm()
        mono = render_volume(vol, cam, tf, step=0.8)
        result = render_sort_last(
            vol, cam, tf, ranks=ranks, algorithm=algo, step=0.8
        )
        assert result.ranks == ranks
        assert max_channel_difference(mono, result.image) < 1e-5

    def test_perspective_camera_close(self):
        """Perspective ordering of regular-grid bricks also composites
        correctly from outside the volume."""
        vol = plume((16, 16, 24))
        cam = default_camera_for(
            vol.shape, width=24, height=24, mode="persp", fov_degrees=35.0
        )
        tf = fire()
        mono = render_volume(vol, cam, tf, step=0.8)
        result = render_sort_last(vol, cam, tf, ranks=4, step=0.8)
        assert max_channel_difference(mono, result.image) < 1e-5

    def test_render_stats_populated(self):
        vol = supernova((16, 16, 16))
        cam = default_camera_for(vol.shape, width=16, height=16)
        result = render_sort_last(vol, cam, cool_warm(), ranks=2, step=1.0)
        assert result.render_stats.rays == 2 * 16 * 16
        assert result.render_stats.samples > 0
        assert result.compositing.messages > 0


class TestValueNoise:
    def test_reproducible(self):
        a = value_noise((8, 8, 8), seed=5)
        b = value_noise((8, 8, 8), seed=5)
        assert np.array_equal(a, b)

    def test_normalized(self):
        n = value_noise((8, 9, 10), seed=1)
        assert n.min() == pytest.approx(0.0)
        assert n.max() == pytest.approx(1.0)
        assert n.shape == (8, 9, 10)

    def test_seeds_differ(self):
        assert not np.array_equal(
            value_noise((8, 8, 8), seed=1), value_noise((8, 8, 8), seed=2)
        )

    def test_octaves_validated(self):
        with pytest.raises(ValueError):
            value_noise((8, 8, 8), octaves=0)


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_named_generation(self, name):
        vol = make_volume(name, (12, 12, 12))
        assert vol.shape == (12, 12, 12)
        assert vol.name == name
        assert vol.data.dtype == np.float32
        assert 0.0 <= vol.data.min() and vol.data.max() <= 1.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_volume("galaxy")

    def test_reproducible(self):
        a = plume((12, 12, 16))
        b = plume((12, 12, 16))
        assert np.array_equal(a.data, b.data)

    def test_plume_column_structure(self):
        """Mass concentrates near the column axis, and the column
        dilutes (lower peak density) as it rises and spreads."""
        vol = plume((24, 24, 32))
        x, y = np.meshgrid(np.arange(24), np.arange(24), indexing="ij")
        near_axis = (np.abs(x - 12) <= 5) & (np.abs(y - 12) <= 5)
        inner = vol.data[near_axis].sum()
        outer = vol.data[~near_axis].sum()
        assert inner > outer
        peak_low = vol.data[:, :, 6:12].max()
        peak_high = vol.data[:, :, 26:].max()
        assert peak_low > peak_high

    def test_supernova_radially_structured(self):
        vol = supernova((24, 24, 24))
        c = 12
        # Mass vanishes outside the shell radius.
        assert vol.data[0, 0, 0] == pytest.approx(0.0, abs=1e-3)
        assert vol.data[c, c, c] > 0.1  # hot core

    def test_combustion_nontrivial_structure(self):
        vol = combustion((24, 18, 12))
        assert vol.data.std() > 0.05

    def test_datasets_render_nonempty(self):
        """Each gallery dataset produces a visible image (Fig. 10)."""
        tfs = {"plume": fire(), "combustion": fire(), "supernova": cool_warm()}
        for name in DATASET_NAMES:
            vol = make_volume(name, (16, 16, 16))
            cam = default_camera_for(vol.shape, width=16, height=16)
            img = render_volume(vol, cam, tfs[name], step=1.0)
            assert img[..., 3].max() > 0.05, name

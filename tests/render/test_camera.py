"""Tests for the orbit camera and ray generation."""

import numpy as np
import pytest

from repro.render.camera import Camera, default_camera_for


def cam(**kw):
    params = dict(center=(0.0, 0.0, 0.0), distance=10.0, width=8, height=8)
    params.update(kw)
    return Camera(**params)


class TestGeometry:
    def test_eye_distance(self):
        c = cam(azimuth=37.0, elevation=12.0)
        assert np.linalg.norm(c.eye() - np.array(c.center)) == pytest.approx(10.0)

    def test_eye_at_zero_angles(self):
        c = cam(azimuth=0.0, elevation=0.0)
        assert np.allclose(c.eye(), [10.0, 0.0, 0.0])

    def test_basis_orthonormal(self):
        c = cam(azimuth=25.0, elevation=40.0)
        f, r, u = c.basis()
        for v in (f, r, u):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(np.dot(f, r)) < 1e-9
        assert abs(np.dot(f, u)) < 1e-9
        assert abs(np.dot(r, u)) < 1e-9

    def test_forward_points_at_center(self):
        c = cam(azimuth=25.0, elevation=40.0)
        f, _, _ = c.basis()
        expected = (np.array(c.center) - c.eye()) / 10.0
        assert np.allclose(f, expected)

    def test_looking_straight_down_does_not_degenerate(self):
        c = cam(elevation=89.5)
        f, r, u = c.basis()
        assert np.isfinite(r).all() and np.linalg.norm(r) == pytest.approx(1.0)


class TestRays:
    def test_shapes(self):
        c = cam(width=6, height=4)
        origins, dirs = c.rays()
        assert origins.shape == (24, 3)
        assert dirs.shape == (24, 3)

    def test_ortho_parallel_directions(self):
        origins, dirs = cam(mode="ortho").rays()
        assert np.allclose(dirs, dirs[0])
        # Origins span the view window.
        assert np.ptp(origins, axis=0).max() > 0

    def test_persp_shared_origin_unit_dirs(self):
        origins, dirs = cam(mode="persp").rays()
        assert np.allclose(origins, origins[0])
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_center_ray_hits_lookat_ortho(self):
        """With an even pixel grid the mean ray passes through center."""
        c = cam(mode="ortho", width=8, height=8)
        origins, dirs = c.rays()
        mean_origin = origins.mean(axis=0)
        # Project the center onto the ray from the mean origin.
        t = np.dot(np.array(c.center) - mean_origin, dirs[0])
        hit = mean_origin + t * dirs[0]
        assert np.allclose(hit, c.center, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            cam(mode="weird")
        with pytest.raises(ValueError):
            cam(elevation=95.0)
        with pytest.raises(ValueError):
            cam(distance=0.0)


class TestDefaultCamera:
    def test_frames_volume(self):
        c = default_camera_for((64, 64, 64))
        assert c.center == (31.5, 31.5, 31.5)
        assert c.distance > 100

    def test_overrides(self):
        c = default_camera_for((64, 64, 64), width=32, azimuth=90.0)
        assert c.width == 32
        assert c.azimuth == 90.0

"""Tests for the discrete-event core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.event_queue import (
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_CYCLE,
    EventQueue,
    SimulationError,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, fired.append, "b")
        q.schedule(1.0, fired.append, "a")
        q.schedule(3.0, fired.append, "c")
        q.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [1.5]
        assert q.now == 1.5

    def test_same_time_fifo(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(1.0, fired.append, name)
        q.run()
        assert fired == ["a", "b", "c"]

    def test_priority_orders_same_time(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, "cycle", priority=PRIORITY_CYCLE)
        q.schedule(1.0, fired.append, "arrival", priority=PRIORITY_ARRIVAL)
        q.schedule(1.0, fired.append, "completion", priority=PRIORITY_COMPLETION)
        q.run()
        assert fired == ["completion", "arrival", "cycle"]

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: q.schedule_after(0.5, lambda: seen.append(q.now)))
        q.run()
        assert seen == [1.5]

    def test_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_after(-0.1, lambda: None)


class TestRun:
    def test_run_until_leaves_future_events(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, 1)
        q.schedule(5.0, fired.append, 5)
        executed = q.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert q.now == 2.0
        assert len(q) == 1

    def test_run_until_then_resume(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, 1)
        q.schedule(5.0, fired.append, 5)
        q.run(until=2.0)
        q.run()
        assert fired == [1, 5]

    def test_event_at_exact_until_runs(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, fired.append, "x")
        q.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_budget(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(float(i), lambda: None)
        assert q.run(max_events=3) == 3
        assert len(q) == 7

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_processed_counter(self):
        q = EventQueue()
        for i in range(4):
            q.schedule(float(i), lambda: None)
        q.run()
        assert q.processed == 4

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule_after(1.0, chain, n + 1)

        q.schedule(0.0, chain, 0)
        q.run()
        assert fired == [0, 1, 2, 3]
        assert q.now == 3.0

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(4.2, lambda: None)
        assert q.peek_time() == 4.2


class TestBudgetedRunClock:
    """Regression tests: a ``max_events`` stop must not advance the clock
    past events that are still pending before ``until`` (the rollback bug:
    the next ``step``/``run`` would then pop an event with ``time < now``
    and move simulated time backwards)."""

    def test_budget_stop_leaves_clock_at_last_executed_event(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda: None)
        q.run(until=10.0, max_events=2)
        assert q.now == 2.0  # not 10.0: the t=3 event is still pending

    def test_step_after_budgeted_run_never_moves_clock_backwards(self):
        q = EventQueue()
        times = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda: times.append(q.now))
        q.run(until=10.0, max_events=2)
        before = q.now
        assert q.step() is True
        assert q.now >= before
        assert times == [1.0, 2.0, 3.0]

    def test_resumed_run_after_budget_stop(self):
        q = EventQueue()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            q.schedule(t, fired.append, t)
        q.run(until=10.0, max_events=1)
        assert q.now == 1.0
        # Resuming must execute the remaining events in order and only
        # then advance the clock to the horizon.
        q.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert q.now == 10.0

    def test_scheduling_after_budget_stop_is_not_rejected(self):
        q = EventQueue()
        for t in (1.0, 2.0, 5.0):
            q.schedule(t, lambda: None)
        q.run(until=10.0, max_events=2)
        # With the clock correctly at t=2, an event at t=3 is legal; the
        # rollback bug put the clock at 10 and made this raise.
        q.schedule(3.0, lambda: None)

    def test_drained_run_still_advances_to_until(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run(until=10.0, max_events=5)
        assert q.now == 10.0  # queue drained: horizon advance is correct


class TestNonFiniteRejection:
    """Regression tests: non-finite times must be rejected at schedule
    time.  NaN is the dangerous one — ``time < self._now`` is False for
    NaN, so a NaN timestamp sailed past the old past-time guard and then
    poisoned the heap (every comparison against NaN is False, breaking
    the heap invariant silently)."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_schedule_rejects_non_finite_time(self, bad):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(bad, lambda: None)
        assert len(q) == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_schedule_after_rejects_non_finite_delay(self, bad):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_after(bad, lambda: None)
        assert len(q) == 0

    def test_schedule_many_rejects_non_finite_and_is_atomic(self):
        q = EventQueue()
        q.schedule(0.5, lambda: None)
        with pytest.raises(SimulationError):
            q.schedule_many(
                [(1.0, lambda: None, ()), (float("nan"), lambda: None, ())]
            )
        # Validation happens before any insertion: the good event of the
        # bad batch must not have landed.
        assert len(q) == 1

    def test_schedule_many_rejects_past_time(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_many([(0.5, lambda: None, ())])

    def test_past_time_message_unchanged(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError, match="before now"):
            q.schedule(0.5, lambda: None)


class TestScheduleMany:
    def test_batch_matches_sequential_schedule(self):
        a, b = EventQueue(), EventQueue()
        events = [(2.0, "x"), (1.0, "y"), (2.0, "z"), (3.0, "w")]
        fired_a, fired_b = [], []
        for t, name in events:
            a.schedule(t, fired_a.append, name, priority=PRIORITY_ARRIVAL)
        b.schedule_many(
            ((t, fired_b.append, (name,)) for t, name in events),
            priority=PRIORITY_ARRIVAL,
        )
        a.run()
        b.run()
        assert fired_a == fired_b == ["y", "x", "z", "w"]

    def test_returns_count(self):
        q = EventQueue()
        assert q.schedule_many((float(i), lambda: None, ()) for i in range(5)) == 5
        assert len(q) == 5

    def test_empty_batch(self):
        q = EventQueue()
        assert q.schedule_many([]) == 0
        assert len(q) == 0

    def test_batch_interleaves_with_existing_events(self):
        q = EventQueue()
        fired = []
        q.schedule(1.5, fired.append, "old")
        q.schedule_many([(1.0, fired.append, ("new-a",)), (2.0, fired.append, ("new-b",))])
        q.run()
        assert fired == ["new-a", "old", "new-b"]

    @given(
        times=st.lists(
            st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False),
            max_size=80,
        ),
        split=st.integers(0, 80),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_ordering_equivalence(self, times, split):
        """Bulk heapify and per-event heappush fire identically.

        Events are totally ordered by ``(time, priority, seq)`` with a
        unique seq, so the heap's internal layout never affects pop
        order — ``schedule_many`` (extend + heapify) must be
        execution-order-equivalent to a loop of ``schedule`` calls,
        including FIFO ties, regardless of how the batch splits against
        pre-existing events.
        """
        split = min(split, len(times))
        sequential, batched = EventQueue(), EventQueue()
        fired_seq, fired_bat = [], []
        for i, t in enumerate(times):
            sequential.schedule(t, fired_seq.append, (t, i))
        for i, t in enumerate(times[:split]):
            batched.schedule(t, fired_bat.append, (t, i))
        batched.schedule_many(
            (t, fired_bat.append, ((t, split + i),))
            for i, t in enumerate(times[split:])
        )
        sequential.run()
        batched.run()
        assert fired_seq == fired_bat
        assert sequential.now == batched.now
        assert sequential.processed == batched.processed

    @given(
        times=st.lists(
            st.sampled_from([0.0, 1.0, 1.5, 2.0]), min_size=1, max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_fifo_ties_preserved(self, times):
        """Heavy tie load: same-time events keep submission order."""
        sequential, batched = EventQueue(), EventQueue()
        fired_seq, fired_bat = [], []
        for i, t in enumerate(times):
            sequential.schedule(t, fired_seq.append, i)
        batched.schedule_many(
            (t, fired_bat.append, (i,)) for i, t in enumerate(times)
        )
        sequential.run()
        batched.run()
        assert fired_seq == fired_bat


class TestDrainToTimestamp:
    def test_until_drain_executes_in_order(self):
        q = EventQueue()
        fired = []
        q.schedule_many((float(i), fired.append, (i,)) for i in range(6))
        executed = q.run(until=3.5)
        assert executed == 4
        assert fired == [0, 1, 2, 3]
        assert q.now == 3.5
        assert len(q) == 2

    def test_until_drain_honors_events_scheduled_mid_drain(self):
        q = EventQueue()
        fired = []

        def spawn():
            fired.append("spawn")
            q.schedule_after(0.25, fired.append, "child")

        q.schedule(1.0, spawn)
        q.schedule(2.0, fired.append, "late")
        q.run(until=1.5)
        assert fired == ["spawn", "child"]
        assert q.now == 1.5

"""Tests for the discrete-event core."""

import pytest

from repro.cluster.event_queue import (
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_CYCLE,
    EventQueue,
    SimulationError,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, fired.append, "b")
        q.schedule(1.0, fired.append, "a")
        q.schedule(3.0, fired.append, "c")
        q.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [1.5]
        assert q.now == 1.5

    def test_same_time_fifo(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(1.0, fired.append, name)
        q.run()
        assert fired == ["a", "b", "c"]

    def test_priority_orders_same_time(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, "cycle", priority=PRIORITY_CYCLE)
        q.schedule(1.0, fired.append, "arrival", priority=PRIORITY_ARRIVAL)
        q.schedule(1.0, fired.append, "completion", priority=PRIORITY_COMPLETION)
        q.run()
        assert fired == ["completion", "arrival", "cycle"]

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: q.schedule_after(0.5, lambda: seen.append(q.now)))
        q.run()
        assert seen == [1.5]

    def test_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_after(-0.1, lambda: None)


class TestRun:
    def test_run_until_leaves_future_events(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, 1)
        q.schedule(5.0, fired.append, 5)
        executed = q.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert q.now == 2.0
        assert len(q) == 1

    def test_run_until_then_resume(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, fired.append, 1)
        q.schedule(5.0, fired.append, 5)
        q.run(until=2.0)
        q.run()
        assert fired == [1, 5]

    def test_event_at_exact_until_runs(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, fired.append, "x")
        q.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_budget(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(float(i), lambda: None)
        assert q.run(max_events=3) == 3
        assert len(q) == 7

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_processed_counter(self):
        q = EventQueue()
        for i in range(4):
            q.schedule(float(i), lambda: None)
        q.run()
        assert q.processed == 4

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule_after(1.0, chain, n + 1)

        q.schedule(0.0, chain, 0)
        q.run()
        assert fired == [0, 1, 2, 3]
        assert q.now == 3.0

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(4.2, lambda: None)
        assert q.peek_time() == 4.2


class TestBudgetedRunClock:
    """Regression tests: a ``max_events`` stop must not advance the clock
    past events that are still pending before ``until`` (the rollback bug:
    the next ``step``/``run`` would then pop an event with ``time < now``
    and move simulated time backwards)."""

    def test_budget_stop_leaves_clock_at_last_executed_event(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda: None)
        q.run(until=10.0, max_events=2)
        assert q.now == 2.0  # not 10.0: the t=3 event is still pending

    def test_step_after_budgeted_run_never_moves_clock_backwards(self):
        q = EventQueue()
        times = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda: times.append(q.now))
        q.run(until=10.0, max_events=2)
        before = q.now
        assert q.step() is True
        assert q.now >= before
        assert times == [1.0, 2.0, 3.0]

    def test_resumed_run_after_budget_stop(self):
        q = EventQueue()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            q.schedule(t, fired.append, t)
        q.run(until=10.0, max_events=1)
        assert q.now == 1.0
        # Resuming must execute the remaining events in order and only
        # then advance the clock to the horizon.
        q.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert q.now == 10.0

    def test_scheduling_after_budget_stop_is_not_rejected(self):
        q = EventQueue()
        for t in (1.0, 2.0, 5.0):
            q.schedule(t, lambda: None)
        q.run(until=10.0, max_events=2)
        # With the clock correctly at t=2, an event at t=3 is legal; the
        # rollback bug put the clock at 10 and made this raise.
        q.schedule(3.0, lambda: None)

    def test_drained_run_still_advances_to_until(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run(until=10.0, max_events=5)
        assert q.now == 10.0  # queue drained: horizon advance is correct

"""Tests for the Cluster aggregate."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.cluster.storage import StorageSpec
from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.util.units import GiB, MiB

COST = CostParameters(render_jitter=0.0)


def make_cluster(n=4):
    return Cluster(
        n,
        GiB,
        COST,
        storage_spec=StorageSpec(bandwidth=100 * MiB, latency=0.01),
    )


def decompose(job):
    return job.decompose(ChunkedDecomposition(256 * MiB))


class TestConstruction:
    def test_node_count(self):
        cluster = make_cluster(6)
        assert cluster.node_count == 6
        assert [n.node_id for n in cluster.nodes] == list(range(6))

    def test_shared_storage(self):
        cluster = make_cluster()
        assert all(n._storage is cluster.storage for n in cluster.nodes)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(0, GiB, COST)
        with pytest.raises(ValueError):
            Cluster(4, 0, COST)


class TestDispatchAndStats:
    def test_dispatch_executes_on_named_node(self):
        cluster = make_cluster()
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        tasks = decompose(job)
        for i, t in enumerate(tasks):
            cluster.dispatch(t, i)
        cluster.events.run()
        assert [t.node for t in tasks] == [0, 1, 2, 3]
        assert cluster.total_tasks_executed() == 4

    def test_task_finish_listener(self):
        cluster = make_cluster()
        seen = []
        cluster.add_task_finish_listener(lambda node, task: seen.append(
            (node.node_id, task.index)
        ))
        job = RenderJob(JobType.INTERACTIVE, Dataset("ds", GiB), 0.0)
        for t in decompose(job):
            cluster.dispatch(t, 0)
        cluster.events.run()
        assert seen == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_hit_rate(self):
        cluster = make_cluster(1)
        ds = Dataset("ds", 512 * MiB)  # 2 chunks, fits in 1 GiB quota
        j1 = RenderJob(JobType.INTERACTIVE, ds, 0.0)
        for t in decompose(j1):
            cluster.dispatch(t, 0)
        cluster.events.run()
        assert cluster.cache_hit_rate() == 0.0
        j2 = RenderJob(JobType.INTERACTIVE, ds, cluster.now)
        for t in decompose(j2):
            cluster.dispatch(t, 0)
        cluster.events.run()
        assert cluster.cache_hit_rate() == 0.5

    def test_backlog_and_idle_nodes(self):
        cluster = make_cluster(2)
        job = RenderJob(JobType.BATCH, Dataset("ds", GiB), 0.0)
        for t in decompose(job):
            cluster.dispatch(t, 0)
        # Node 0 busy (1 running + 3 queued); node 1 idle.
        assert cluster.total_backlog() == 3
        assert cluster.idle_nodes() == [1]
        cluster.events.run()
        assert cluster.idle_nodes() == [0, 1]

    def test_mean_utilization(self):
        cluster = make_cluster(2)
        job = RenderJob(JobType.BATCH, Dataset("ds", GiB), 0.0)
        for t in decompose(job):
            cluster.dispatch(t, 0)
        cluster.events.run()
        util = cluster.mean_utilization(cluster.now)
        assert util == pytest.approx(0.5)  # node 0 fully busy, node 1 idle

"""Tests for the calibrated cost model constants."""

import pytest

from repro.cluster.costs import CostParameters, cost_preset_anl, cost_preset_linux8
from repro.util.units import MiB


class TestValidation:
    def test_defaults_valid(self):
        CostParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"render_base": -1.0},
            {"image_pixels": 0},
            {"render_jitter": 1.0},
            {"render_jitter": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CostParameters(**kwargs)

    def test_with_overrides(self):
        cost = CostParameters().with_overrides(render_base=5e-3)
        assert cost.render_base == 5e-3


class TestRenderTime:
    def test_screen_space_dominates(self):
        """Per-task render cost is nearly chunk-size independent — the
        property behind the paper's FCFSU result."""
        cost = CostParameters()
        small = cost.render_time(128 * MiB, 4)
        large = cost.render_time(512 * MiB, 4)
        assert large > small
        assert (large - small) / small < 0.25

    def test_group_overhead_grows_with_stages(self):
        cost = CostParameters()
        assert cost.render_time(256 * MiB, 8) > cost.render_time(256 * MiB, 4)

    def test_group_one_has_no_stage_overhead(self):
        cost = CostParameters(group_stage_overhead=1e-3)
        base = cost.render_time(MiB, 1)
        assert cost.render_time(MiB, 2) == pytest.approx(base + 1e-3)

    def test_composite_time_small_versus_render(self):
        """Fig. 2: compositing is milliseconds, like rendering."""
        cost = CostParameters()
        assert cost.composite_time(16) < 0.01


class TestCalibration:
    def test_linux8_scenario1_capacity(self):
        """8 nodes must sustain 200 jobs/s x 4 tasks on the hit path."""
        cost = cost_preset_linux8()
        task = cost.render_time(512 * MiB, 4)
        capacity = 8 / (4 * task)
        assert 200 < capacity < 230

    def test_linux8_fcfsu_half_target(self):
        """Uniform decomposition: ~99 jobs/s → ~16.5 fps per action."""
        cost = cost_preset_linux8()
        task = cost.render_time(256 * MiB, 8)
        capacity = 8 / (8 * task)
        assert 90 < capacity < 110

    def test_anl_scenario3_capacity(self):
        """64 nodes must exceed the ~535 jobs/s Scenario-3 demand."""
        cost = cost_preset_anl()
        task = cost.render_time(512 * MiB, 16)
        capacity = 64 / (16 * task)
        assert 550 < capacity < 700

    def test_anl_fcfsu_third_of_target(self):
        """FCFSU at 64 nodes lands near the paper's 11.25 fps."""
        cost = cost_preset_anl()
        task = cost.render_time(128 * MiB, 64)
        jobs_per_s = 1 / task
        fps = jobs_per_s / 16  # ~16 concurrent actions
        assert 9.0 < fps < 13.0

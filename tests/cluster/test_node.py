"""Tests for rendering-node task execution."""

import pytest

from repro.cluster.costs import CostParameters
from repro.cluster.event_queue import EventQueue
from repro.cluster.gpu import GpuSpec
from repro.cluster.node import RenderNode
from repro.cluster.storage import StorageModel, StorageSpec
from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.util.units import GiB, MiB

COST = CostParameters(render_jitter=0.0)
POLICY = ChunkedDecomposition(256 * MiB)


def make_node(events, *, quota=GiB, finished=None, cost=COST, vram=False):
    storage = StorageModel(StorageSpec(bandwidth=100 * MiB, latency=0.01))
    return RenderNode(
        0,
        quota,
        cost,
        storage,
        events,
        gpu=GpuSpec(video_memory=512 * MiB) if vram else None,
        model_vram=vram,
        on_task_finish=finished,
    )


def make_tasks(n_chunks=4):
    ds = Dataset("ds", n_chunks * 256 * MiB)
    job = RenderJob(JobType.INTERACTIVE, ds, 0.0)
    return job.decompose(POLICY)


class TestExecution:
    def test_cold_task_pays_io(self):
        events = EventQueue()
        node = make_node(events)
        task = make_tasks()[0]
        node.enqueue(task)
        events.run()
        assert task.cache_hit is False
        expected_io = 0.01 + (256 * MiB) / (100 * MiB)
        assert task.io_time == pytest.approx(expected_io)
        render = COST.render_time(task.chunk.size, 4)
        assert task.finish_time == pytest.approx(expected_io + render)

    def test_warm_task_skips_io(self):
        events = EventQueue()
        node = make_node(events)
        tasks = make_tasks()
        node.cache.insert(tasks[0].chunk)
        node.enqueue(tasks[0])
        events.run()
        assert tasks[0].cache_hit is True
        assert tasks[0].io_time == 0.0

    def test_fifo_order(self):
        events = EventQueue()
        finished = []
        node = make_node(events, finished=lambda n, t: finished.append(t.index))
        for task in make_tasks():
            node.enqueue(task)
        events.run()
        assert finished == [0, 1, 2, 3]

    def test_serial_execution_times(self):
        """Tasks run one at a time on the render thread."""
        events = EventQueue()
        node = make_node(events)
        tasks = make_tasks(2)
        node.cache.insert(tasks[0].chunk)
        node.cache.insert(tasks[1].chunk)
        for t in tasks:
            node.enqueue(t)
        events.run()
        assert tasks[1].start_time == pytest.approx(tasks[0].finish_time)

    def test_stats_accumulate(self):
        events = EventQueue()
        node = make_node(events)
        tasks = make_tasks()
        node.cache.insert(tasks[0].chunk)
        for t in tasks:
            node.enqueue(t)
        events.run()
        assert node.tasks_executed == 4
        assert node.cache_hits == 1
        assert node.cache_misses == 3
        assert node.io_seconds > 0
        assert node.busy_time > 0

    def test_utilization_bounds(self):
        events = EventQueue()
        node = make_node(events)
        tasks = make_tasks(1)
        node.enqueue(tasks[0])
        events.run()
        assert node.utilization(events.now) == pytest.approx(1.0)
        assert node.utilization(0.0) == 0.0

    def test_wrong_node_assignment_rejected(self):
        events = EventQueue()
        node = make_node(events)
        task = make_tasks()[0]
        task.node = 3
        with pytest.raises(ValueError):
            node.enqueue(task)

    def test_cache_eviction_during_execution(self):
        """Quota of 2 chunks: executing a 5-chunk job cycles the cache."""
        events = EventQueue()
        node = make_node(events, quota=512 * MiB)
        ds = Dataset("big", 5 * 256 * MiB)
        job = RenderJob(JobType.BATCH, ds, 0.0)
        for t in job.decompose(POLICY):
            node.enqueue(t)
        events.run()
        assert node.cache_misses == 5
        assert len(node.cache) == 2

    def test_drain_check(self):
        events = EventQueue()
        node = make_node(events)
        node.enqueue(make_tasks()[0])
        with pytest.raises(AssertionError):
            node.drain_check()
        events.run()
        node.drain_check()


class TestRenderJitter:
    def test_jitter_changes_render_time_deterministically(self):
        import numpy as np

        cost = CostParameters(render_jitter=0.2)

        def run(seed):
            events = EventQueue()
            storage = StorageModel(StorageSpec())
            node = RenderNode(
                0, GiB, cost, storage, events, rng=np.random.default_rng(seed)
            )
            task = make_tasks()[0]
            node.cache.insert(task.chunk)
            node.enqueue(task)
            events.run()
            return task.finish_time

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_jitter_bounded(self):
        import numpy as np

        cost = CostParameters(render_jitter=0.2)
        nominal = cost.render_time(256 * MiB, 4)
        events = EventQueue()
        storage = StorageModel(StorageSpec())
        node = RenderNode(
            0, GiB, cost, storage, events, rng=np.random.default_rng(0)
        )
        tasks = make_tasks()
        for t in tasks:
            node.cache.insert(t.chunk)
            node.enqueue(t)
        events.run()
        for t in tasks:
            exec_time = t.finish_time - t.start_time
            assert 0.8 * nominal <= exec_time <= 1.2 * nominal


class TestVram:
    def test_vram_model_charges_upload(self):
        events = EventQueue()
        node = make_node(events, vram=True)
        tasks = make_tasks(2)
        for t in tasks:
            node.cache.insert(t.chunk)  # main-memory warm
        node.enqueue(tasks[0])
        events.run()
        render = COST.render_time(tasks[0].chunk.size, 2)
        upload = (256 * MiB) / (4 * GiB)
        assert tasks[0].finish_time == pytest.approx(render + upload)
        assert node.vram.uploads == 1

    def test_vram_hit_no_upload(self):
        events = EventQueue()
        node = make_node(events, vram=True)
        task_a = make_tasks(2)[0]
        node.cache.insert(task_a.chunk)
        node.enqueue(task_a)
        events.run()
        start = events.now
        job2 = RenderJob(JobType.INTERACTIVE, Dataset("ds", 2 * 256 * MiB), start)
        task_b = job2.decompose(POLICY)[0]  # same chunk key
        node.enqueue(task_b)
        events.run()
        render = COST.render_time(task_b.chunk.size, 2)
        assert task_b.finish_time - task_b.start_time == pytest.approx(render)

    def test_default_has_no_vram_model(self):
        events = EventQueue()
        node = make_node(events, vram=False)
        assert node.vram is None

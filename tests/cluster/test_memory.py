"""Tests for the byte-accounted LRU chunk cache, incl. property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.memory import ChunkTooLargeError, LRUChunkCache
from repro.core.chunks import Chunk


def chunk(i: int, size: int = 100) -> Chunk:
    return Chunk(dataset="ds", index=i, size=size)


class TestBasics:
    def test_insert_and_contains(self):
        cache = LRUChunkCache(1000)
        c = chunk(0)
        assert c not in cache
        assert cache.insert(c) == []
        assert c in cache
        assert cache.used_bytes == 100
        assert cache.free_bytes == 900

    def test_touch_hit_and_miss(self):
        cache = LRUChunkCache(1000)
        c = chunk(0)
        assert cache.touch(c) is False
        cache.insert(c)
        assert cache.touch(c) is True

    def test_reinsert_does_not_double_count(self):
        cache = LRUChunkCache(1000)
        c = chunk(0)
        cache.insert(c)
        assert cache.insert(c) == []
        assert cache.used_bytes == 100
        assert len(cache) == 1

    def test_evict_explicit(self):
        cache = LRUChunkCache(1000)
        c = chunk(0)
        cache.insert(c)
        assert cache.evict(c) is True
        assert cache.evict(c) is False
        assert cache.used_bytes == 0

    def test_clear(self):
        cache = LRUChunkCache(1000)
        for i in range(5):
            cache.insert(chunk(i))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_chunk_too_large(self):
        cache = LRUChunkCache(50)
        with pytest.raises(ChunkTooLargeError):
            cache.insert(chunk(0, size=51))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUChunkCache(0)


class TestLRUOrder:
    def test_eviction_order_is_least_recent_first(self):
        cache = LRUChunkCache(300)
        a, b, c, d = (chunk(i) for i in range(4))
        cache.insert(a)
        cache.insert(b)
        cache.insert(c)
        evicted = cache.insert(d)  # a is LRU
        assert evicted == [a]
        assert a not in cache and d in cache

    def test_touch_protects_from_eviction(self):
        cache = LRUChunkCache(300)
        a, b, c, d = (chunk(i) for i in range(4))
        cache.insert(a)
        cache.insert(b)
        cache.insert(c)
        cache.touch(a)  # now b is LRU
        assert cache.insert(d) == [b]

    def test_multi_eviction_for_large_insert(self):
        cache = LRUChunkCache(300)
        small = [chunk(i, size=100) for i in range(3)]
        for s in small:
            cache.insert(s)
        big = chunk(99, size=180)
        evicted = cache.insert(big)
        assert evicted == small[:2]
        assert cache.used_bytes == 100 + 180

    def test_lru_chunk_and_iteration_order(self):
        cache = LRUChunkCache(1000)
        chunks = [chunk(i) for i in range(3)]
        for c in chunks:
            cache.insert(c)
        assert cache.lru_chunk() == chunks[0]
        assert cache.chunks() == chunks
        cache.touch(chunks[0])
        assert cache.lru_chunk() == chunks[1]

    def test_empty_lru_chunk(self):
        assert LRUChunkCache(10).lru_chunk() is None


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.sampled_from(["insert", "touch", "evict"])),
            max_size=200,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants_under_random_ops(self, ops):
        """Byte accounting and capacity hold under arbitrary op sequences."""
        cache = LRUChunkCache(500)
        model = {}
        for i, op in ops:
            c = chunk(i, size=60 + 10 * (i % 4))
            if op == "insert":
                evicted = cache.insert(c)
                for victim in evicted:
                    model.pop(victim, None)
                model[c] = c.size
            elif op == "touch":
                assert cache.touch(c) == (c in model)
            else:
                assert cache.evict(c) == (c in model)
                model.pop(c, None)
            cache.check_invariants()
            assert cache.used_bytes == sum(model.values())
            assert set(cache.chunks()) == set(model)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_capacity(self, indices):
        cache = LRUChunkCache(256)
        for i in indices:
            cache.insert(chunk(i, size=50 + (i % 7) * 20))
            assert cache.used_bytes <= 256

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_most_recent_insert_always_resident(self, indices):
        cache = LRUChunkCache(200)
        for i in indices:
            c = chunk(i, size=80)
            cache.insert(c)
            assert c in cache

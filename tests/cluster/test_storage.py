"""Tests for the disk / file-server I/O model."""

import pytest

from repro.cluster.storage import StorageModel, StorageSpec
from repro.util.units import GiB, MiB


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = StorageSpec()
        assert spec.bandwidth == 100 * MiB

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth": 0},
            {"latency": -1},
            {"shared_bandwidth": 0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StorageSpec(**kwargs)


class TestEstimates:
    def test_estimate_is_latency_plus_transfer(self):
        model = StorageModel(StorageSpec(bandwidth=100 * MiB, latency=0.01))
        assert model.estimate_load_time(512 * MiB) == pytest.approx(0.01 + 5.12)

    def test_paper_magnitude_tens_of_seconds_per_dataset(self):
        """Fig. 2: loading a full 2 GiB dataset takes tens of seconds."""
        model = StorageModel(StorageSpec(bandwidth=100 * MiB, latency=0.01))
        total = 4 * model.estimate_load_time(512 * MiB)
        assert 10.0 < total < 60.0

    def test_zero_bytes(self):
        model = StorageModel(StorageSpec(latency=0.01))
        assert model.estimate_load_time(0) == pytest.approx(0.01)

    def test_negative_bytes_rejected(self):
        model = StorageModel(StorageSpec())
        with pytest.raises(ValueError):
            model.estimate_load_time(-1)


class TestLoadLifecycle:
    def test_begin_end_tracks_active(self):
        model = StorageModel(StorageSpec())
        model.begin_load(MiB)
        model.begin_load(MiB)
        assert model.active_loads == 2
        model.end_load()
        assert model.active_loads == 1
        model.end_load()
        assert model.active_loads == 0

    def test_end_without_begin_raises(self):
        model = StorageModel(StorageSpec())
        with pytest.raises(RuntimeError):
            model.end_load()

    def test_counters(self):
        model = StorageModel(StorageSpec())
        model.begin_load(10)
        model.begin_load(20)
        assert model.total_loads == 2
        assert model.total_bytes == 30

    def test_no_jitter_is_deterministic(self):
        model = StorageModel(StorageSpec(jitter=0.0))
        d1 = model.begin_load(MiB)
        d2 = model.begin_load(MiB)
        assert d1 == d2

    def test_jitter_bounded_and_seeded(self):
        spec = StorageSpec(jitter=0.2)
        nominal = StorageModel(StorageSpec()).estimate_load_time(MiB)
        a = StorageModel(spec, seed=5)
        b = StorageModel(spec, seed=5)
        da = [a.begin_load(MiB) for _ in range(20)]
        db = [b.begin_load(MiB) for _ in range(20)]
        assert da == db
        for d in da:
            assert 0.8 * nominal <= d <= 1.2 * nominal
        assert len(set(da)) > 1


class TestContention:
    def test_local_disks_no_contention(self):
        model = StorageModel(StorageSpec(bandwidth=100 * MiB))
        assert model.effective_bandwidth(16) == 100 * MiB

    def test_shared_server_divides_bandwidth(self):
        model = StorageModel(
            StorageSpec(bandwidth=100 * MiB, shared_bandwidth=200 * MiB)
        )
        assert model.effective_bandwidth(1) == 100 * MiB  # per-stream cap
        assert model.effective_bandwidth(4) == 50 * MiB
        assert model.effective_bandwidth(8) == 25 * MiB

    def test_contended_load_slower(self):
        spec = StorageSpec(bandwidth=1 * GiB, shared_bandwidth=1 * GiB, latency=0.0)
        model = StorageModel(spec)
        first = model.begin_load(GiB)
        second = model.begin_load(GiB)
        assert second == pytest.approx(2 * first)

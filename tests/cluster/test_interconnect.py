"""Tests for the interconnect model and stage counting."""

import pytest

from repro.cluster.interconnect import Interconnect, LinkSpec, swap_stage_count
from repro.util.units import GiB, MiB


class TestLinkSpec:
    def test_transfer_time(self):
        spec = LinkSpec(latency=1e-4, bandwidth=1 * GiB)
        assert spec.transfer_time(1 * GiB) == pytest.approx(1.0001)

    def test_zero_bytes_is_latency(self):
        spec = LinkSpec(latency=5e-5, bandwidth=GiB)
        assert spec.transfer_time(0) == 5e-5

    @pytest.mark.parametrize("kwargs", [{"latency": -1}, {"bandwidth": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestInterconnect:
    def test_accounting(self):
        net = Interconnect(LinkSpec())
        net.send(100)
        net.send(200)
        assert net.messages == 2
        assert net.bytes_sent == 300

    def test_reset(self):
        net = Interconnect(LinkSpec())
        net.send(MiB)
        net.reset_counters()
        assert net.messages == 0
        assert net.bytes_sent == 0

    def test_send_returns_transfer_time(self):
        spec = LinkSpec(latency=0.0, bandwidth=MiB)
        net = Interconnect(spec)
        assert net.send(MiB) == pytest.approx(1.0)


class TestSwapStageCount:
    @pytest.mark.parametrize(
        "group,stages",
        [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (16, 4), (64, 6), (100, 7)],
    )
    def test_stages(self, group, stages):
        assert swap_stage_count(group) == stages

    def test_invalid(self):
        with pytest.raises(ValueError):
            swap_stage_count(0)

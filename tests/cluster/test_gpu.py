"""Tests for the GPU spec and explicit VRAM model."""

import pytest

from repro.cluster.gpu import GpuMemoryModel, GpuSpec
from repro.core.chunks import Chunk
from repro.util.units import GiB, MiB


def chunk(i: int, size: int = 256 * MiB) -> Chunk:
    return Chunk("ds", i, size)


class TestGpuSpec:
    def test_upload_time(self):
        spec = GpuSpec(video_memory=GiB, upload_bandwidth=4 * GiB)
        assert spec.upload_time(GiB) == pytest.approx(0.25)

    @pytest.mark.parametrize("kwargs", [{"video_memory": 0}, {"upload_bandwidth": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GpuSpec(**kwargs)


class TestGpuMemoryModel:
    def test_first_access_uploads(self):
        model = GpuMemoryModel(GpuSpec(video_memory=GiB, upload_bandwidth=4 * GiB))
        cost = model.access(chunk(0))
        assert cost == pytest.approx((256 * MiB) / (4 * GiB))
        assert model.uploads == 1
        assert model.resident(chunk(0))

    def test_resident_access_free(self):
        model = GpuMemoryModel(GpuSpec())
        model.access(chunk(0))
        assert model.access(chunk(0)) == 0.0
        assert model.hits == 1
        assert model.uploads == 1

    def test_lru_eviction_when_vram_full(self):
        # 1 GiB VRAM holds 4 chunks of 256 MiB.
        model = GpuMemoryModel(GpuSpec(video_memory=GiB))
        for i in range(4):
            model.access(chunk(i))
        model.access(chunk(4))  # evicts chunk 0
        assert not model.resident(chunk(0))
        assert model.resident(chunk(4))
        assert model.access(chunk(0)) > 0.0  # re-upload

    def test_invalidate(self):
        model = GpuMemoryModel(GpuSpec())
        model.access(chunk(0))
        model.invalidate(chunk(0))
        assert not model.resident(chunk(0))

    def test_upload_bytes_accounting(self):
        model = GpuMemoryModel(GpuSpec())
        model.access(chunk(0))
        model.access(chunk(1))
        model.access(chunk(0))  # hit
        assert model.upload_bytes == 2 * 256 * MiB


class TestVramThrashing:
    def test_working_set_larger_than_vram_thrashes(self):
        """The effect the paper's future work targets: a node serving
        more distinct chunks than its GPU holds re-uploads constantly."""
        model = GpuMemoryModel(GpuSpec(video_memory=GiB))  # 4-chunk VRAM
        uploads_before = model.uploads
        for _round in range(10):
            for i in range(5):  # 5-chunk working set
                model.access(chunk(i))
        # Every access misses once the set exceeds capacity (LRU worst case).
        assert model.uploads - uploads_before == 50
        assert model.hits == 0

"""Tests for multi-executor (multi-GPU) rendering nodes."""

import pytest

from repro.cluster.costs import CostParameters
from repro.cluster.event_queue import EventQueue
from repro.cluster.node import RenderNode
from repro.cluster.storage import StorageModel, StorageSpec
from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.util.units import GiB, MiB

COST = CostParameters(render_jitter=0.0)
POLICY = ChunkedDecomposition(256 * MiB)


def make_node(events, executors=2):
    storage = StorageModel(StorageSpec(bandwidth=100 * MiB, latency=0.01))
    return RenderNode(
        0, GiB, COST, storage, events, executors=executors
    )


def warm_tasks(node, n_chunks=4):
    ds = Dataset("ds", n_chunks * 256 * MiB)
    job = RenderJob(JobType.INTERACTIVE, ds, 0.0)
    tasks = job.decompose(POLICY)
    for t in tasks:
        node.cache.insert(t.chunk)
    return tasks


class TestMultiExecutor:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_node(EventQueue(), executors=0)

    def test_two_tasks_run_concurrently(self):
        events = EventQueue()
        node = make_node(events, executors=2)
        tasks = warm_tasks(node, 2)
        for t in tasks:
            node.enqueue(t)
        assert len(node.running_tasks) == 2
        events.run()
        # Both started at t=0 (parallel pipelines).
        assert tasks[0].start_time == tasks[1].start_time == 0.0

    def test_third_task_waits(self):
        events = EventQueue()
        node = make_node(events, executors=2)
        tasks = warm_tasks(node, 4)
        for t in tasks[:3]:
            node.enqueue(t)
        assert node.saturated
        assert node.backlog == 1
        events.run()
        render = COST.render_time(tasks[0].chunk.size, 4)
        assert tasks[2].start_time == pytest.approx(render)

    def test_throughput_doubles(self):
        render = COST.render_time(256 * MiB, 4)

        def finish_time(executors):
            events = EventQueue()
            node = make_node(events, executors=executors)
            tasks = warm_tasks(node, 4)
            for t in tasks:
                node.enqueue(t)
            events.run()
            return max(t.finish_time for t in tasks)

        assert finish_time(1) == pytest.approx(4 * render)
        assert finish_time(2) == pytest.approx(2 * render)

    def test_utilization_normalized_by_executors(self):
        events = EventQueue()
        node = make_node(events, executors=2)
        tasks = warm_tasks(node, 2)
        for t in tasks:
            node.enqueue(t)
        events.run()
        assert node.utilization(events.now) == pytest.approx(1.0)

    def test_fail_orphans_all_running(self):
        events = EventQueue()
        node = make_node(events, executors=2)
        tasks = warm_tasks(node, 3)
        for t in tasks:
            node.enqueue(t)
        orphans = node.fail()
        assert len(orphans) == 3  # 2 running + 1 queued


class TestSystemLevel:
    def test_gpus_per_node_doubles_scenario_capacity(self):
        """Scenario 4 is overloaded at one pipeline per node; doubling
        the GPUs per node (the real Eureka configuration) recovers the
        framerate toward the target."""
        from dataclasses import replace

        from repro.sim.simulator import run_simulation
        from repro.workload.scenarios import scenario_4

        sc = scenario_4(scale=0.05)
        single = run_simulation(sc, "OURS")
        dual = run_simulation(
            replace(sc, system=sc.system.with_overrides(gpus_per_node=2)),
            "OURS",
        )
        assert dual.interactive_fps > 1.2 * single.interactive_fps

    def test_tables_divide_estimates(self):
        from repro.cluster.cluster import Cluster
        from repro.core.tables import SchedulerTables

        cluster = Cluster(2, GiB, COST, executors_per_node=2)
        tables = SchedulerTables(
            2, GiB, COST, cluster.storage, executors_per_node=2
        )
        job = RenderJob(JobType.INTERACTIVE, Dataset("d", 256 * MiB), 0.0)
        task = job.decompose(POLICY)[0]
        est = tables.record_assignment(task, 0, now=0.0)
        assert tables.available[0] == pytest.approx(est / 2)

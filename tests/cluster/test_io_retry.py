"""Tests for I/O timeouts and exponential-backoff retry on chunk loads."""

import pytest

from repro.cluster.costs import CostParameters
from repro.cluster.event_queue import EventQueue
from repro.cluster.node import RenderNode
from repro.cluster.storage import StorageModel, StorageSpec
from repro.core.chunks import ChunkedDecomposition, Dataset
from repro.core.job import JobType, RenderJob
from repro.util.units import MiB

COST = CostParameters(render_jitter=0.0)
POLICY = ChunkedDecomposition(256 * MiB)


def make_node(events, spec, *, quota=4 * 256 * MiB):
    storage = StorageModel(spec)
    node = RenderNode(0, quota, COST, storage, events)
    return node, storage


def make_task():
    ds = Dataset("ds", 256 * MiB)
    job = RenderJob(JobType.INTERACTIVE, ds, 0.0)
    return job.decompose(POLICY)[0]


class TestSpecValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            StorageSpec(timeout=0.0)
        with pytest.raises(ValueError):
            StorageSpec(timeout=-1.0)

    def test_retries_and_backoff_validated(self):
        with pytest.raises(ValueError):
            StorageSpec(max_retries=-1)
        with pytest.raises(ValueError):
            StorageSpec(backoff=-0.1)


class TestNoTimeout:
    def test_generous_deadline_is_identity(self):
        """A timeout that never trips changes nothing at all."""
        runs = []
        for spec in (
            StorageSpec(bandwidth=100 * MiB, latency=0.01),
            StorageSpec(bandwidth=100 * MiB, latency=0.01, timeout=1e9),
        ):
            events = EventQueue()
            node, _ = make_node(events, spec)
            task = make_task()
            node.enqueue(task)
            events.run()
            runs.append((task.io_time, task.finish_time, node.io_timeouts))
        assert runs[0] == runs[1]
        assert runs[0][2] == 0


class TestPersistentSlowness:
    """Every attempt quotes over the deadline: bounded retries, then
    the final attempt is accepted so the task cannot starve."""

    SPEC = StorageSpec(
        bandwidth=100 * MiB,  # solo quote: 0.01 + 2.56 s = 2.57 s
        latency=0.01,
        timeout=1.0,
        max_retries=3,
        backoff=0.05,
    )

    def test_retries_then_accepts_final_attempt(self):
        events = EventQueue()
        node, storage = make_node(events, self.SPEC)
        task = make_task()
        node.enqueue(task)
        events.run()
        assert node.io_timeouts == 3
        assert task.finish_time is not None
        # waited = sum of (timeout + backoff * 2**k) for k = 0, 1, 2.
        waited = sum(1.0 + 0.05 * 2.0 ** k for k in range(3))
        quote = 0.01 + 256 / 100
        assert task.io_time == pytest.approx(waited + quote)
        assert node.io_seconds == pytest.approx(task.io_time)
        assert storage.active_loads == 0

    def test_zero_retries_accepts_immediately(self):
        events = EventQueue()
        spec = StorageSpec(
            bandwidth=100 * MiB, latency=0.01, timeout=1.0, max_retries=0
        )
        node, _ = make_node(events, spec)
        task = make_task()
        node.enqueue(task)
        events.run()
        assert node.io_timeouts == 0
        assert task.io_time == pytest.approx(0.01 + 256 / 100)


class TestTransientContention:
    def test_retry_succeeds_once_contention_passes(self):
        """An I/O storm costs one bounded wait, not the storm's quote."""
        spec = StorageSpec(
            bandwidth=100 * MiB,
            latency=0.01,
            shared_bandwidth=100 * MiB,
            timeout=5.0,
            max_retries=3,
            backoff=0.05,
        )
        events = EventQueue()
        node, storage = make_node(events, spec)
        # Three synthetic streams drop per-stream bandwidth to 25 MiB/s:
        # the quote (10.25 s) blows the 5 s deadline.
        for _ in range(3):
            storage.begin_load(256 * MiB)
        task = make_task()
        node.enqueue(task)
        assert node.io_timeouts == 1
        # The storm ends before the retry fires at t = 5.05.
        events.schedule(
            1.0, lambda: [storage.end_load(256 * MiB) for _ in range(3)]
        )
        events.run()
        assert task.finish_time is not None
        assert node.io_timeouts == 1
        # Retry re-quoted at full bandwidth: wait + the *fast* load.
        assert task.io_time == pytest.approx(5.05 + 0.01 + 256 / 100)
        assert storage.active_loads == 0


class TestCrashDuringBackoff:
    def test_fail_keeps_storage_balanced(self):
        """A node crash between retries leaves no dangling stream."""
        spec = StorageSpec(
            bandwidth=100 * MiB, latency=0.01, timeout=1.0, max_retries=3
        )
        events = EventQueue()
        node, storage = make_node(events, spec)
        task = make_task()
        node.enqueue(task)  # first attempt times out, retry pending
        assert node.io_timeouts == 1
        assert storage.active_loads == 0  # stream released at deadline
        orphans = node.fail()
        assert orphans == [task]
        events.run()  # the stale retry event fires and is void
        assert storage.active_loads == 0
        assert task.finish_time is None
        assert node.tasks_executed == 0

    def test_fail_during_active_load_releases_stream(self):
        spec = StorageSpec(bandwidth=100 * MiB, latency=0.01)
        events = EventQueue()
        node, storage = make_node(events, spec)
        task = make_task()
        node.enqueue(task)  # load accepted, completion pending
        assert storage.active_loads == 1
        node.fail()
        assert storage.active_loads == 0

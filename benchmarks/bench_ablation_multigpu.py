"""Ablation — one vs two rendering pipelines (GPUs) per node.

The ANL Eureka nodes carry two Quadro FX5600s (paper §VI-A); the
calibrated presets model one rendering pipeline per node because the
paper's numbers are per-node.  This ablation asks what the second GPU
buys: Scenario 4's interactive demand (~647 jobs/s) slightly exceeds
the single-pipeline capacity (~615 jobs/s), so with one GPU per node
latency soars (the published behaviour); with two, capacity doubles and
the same workload runs at the target framerate with interactive
latency.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.reporting.report import sweep_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_4

SCALE = bench_scale(0.1)
GPU_COUNTS = [1, 2]

_RESULTS: dict = {}


def _run(gpus: int):
    if gpus not in _RESULTS:
        sc = scenario_4(scale=SCALE)
        if gpus != 1:
            sc = replace(sc, system=sc.system.with_overrides(gpus_per_node=gpus))
        _RESULTS[gpus] = run_simulation(sc, "OURS")
    return _RESULTS[gpus]


@pytest.mark.parametrize("gpus", GPU_COUNTS)
def test_multigpu_point(benchmark, gpus):
    result = benchmark.pedantic(_run, args=(gpus,), rounds=1, iterations=1)
    assert result.jobs_submitted > 0


def test_multigpu_report(benchmark):
    def build():
        return {
            "fps": [_run(g).interactive_fps for g in GPU_COUNTS],
            "latency (s)": [
                _run(g).interactive_latency.mean for g in GPU_COUNTS
            ],
            "utilization %": [
                100 * _run(g).mean_node_utilization for g in GPU_COUNTS
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "GPUs per node",
        GPU_COUNTS,
        series,
        title=(
            "Ablation — rendering pipelines per node, Scenario 4 under "
            "OURS (Eureka nodes physically carry two FX5600s)"
        ),
        fmt="{:>12.2f}",
    )
    text += (
        "\nshape: Scenario 4's demand slightly exceeds single-pipeline "
        "capacity (the paper's soaring-latency regime); a second GPU per "
        "node absorbs it — framerate reaches the target and latency "
        "drops by orders of magnitude."
    )
    emit_report("ablation_multigpu", text)

    assert series["fps"][1] > 1.2 * series["fps"][0]
    assert series["latency (s)"][1] < 0.5 * series["latency (s)"][0]

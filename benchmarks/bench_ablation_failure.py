"""Ablation — node crashes mid-run (paper §VI-D fault tolerance).

"Our scheduling method has a certain degree of fault tolerance when
some of the nodes crash … the rendering can still carry on as long as
the system has copies of the required data chunks on other rendering
nodes."  This bench runs Scenario 1 under OURS with 0, 1, and 2 node
crashes injected mid-run and reports the degradation: the service keeps
serving every action (no job is lost — orphaned tasks re-schedule onto
survivors), at the framerate the surviving capacity supports.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.faults import FaultPlan
from repro.reporting.report import sweep_table
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1

SCALE = bench_scale(0.5)
CRASHES = {0: [], 1: [(10.0 * SCALE, 3)], 2: [(10.0 * SCALE, 3), (18.0 * SCALE, 6)]}


@pytest.fixture(scope="module")
def results_cache():
    """Module-scoped result memo — dropped when the module finishes, so
    repeated bench sessions in one process don't accumulate results."""
    cache: dict = {}
    yield cache
    cache.clear()


def _run(crashes: int, cache: dict):
    if crashes not in cache:
        cache[crashes] = run_simulation(
            scenario_1(scale=SCALE),
            "OURS",
            config=RunConfig(
                faults=FaultPlan.from_node_failures(CRASHES[crashes])
            ),
        )
    return cache[crashes]


@pytest.mark.parametrize("crashes", sorted(CRASHES))
def test_failure_point(benchmark, crashes, results_cache):
    result = benchmark.pedantic(
        _run, args=(crashes, results_cache), rounds=1, iterations=1
    )
    assert result.jobs_submitted > 0


def test_failure_report(benchmark, results_cache):
    def _run_c(c):
        return _run(c, results_cache)

    def build():
        return {
            "fps": [_run_c(c).interactive_fps for c in sorted(CRASHES)],
            "latency (s)": [
                _run_c(c).interactive_latency.mean for c in sorted(CRASHES)
            ],
            "hit rate %": [100 * _run_c(c).hit_rate for c in sorted(CRASHES)],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "# crashed nodes",
        sorted(CRASHES),
        series,
        title=(
            "Ablation — node crashes mid-run, Scenario 1 under OURS "
            "(8 nodes; crashes at 1/3 and 3/5 of the run)"
        ),
        fmt="{:>12.2f}",
    )
    text += (
        "\nshape: the service survives every crash — orphaned tasks are "
        "re-dispatched to surviving replicas and lost chunks reload from "
        "the file system — degrading to the framerate the remaining "
        "capacity supports instead of failing."
    )
    emit_report("ablation_failure", text)

    fps = series["fps"]
    # Monotone degradation, never collapse-to-zero.
    assert fps[0] > fps[1] > fps[2] > 1.0
    # Every crash run still completed a substantial share of its jobs.
    for c in sorted(CRASHES):
        result = _run_c(c)
        assert result.jobs_completed > 0.25 * result.jobs_submitted
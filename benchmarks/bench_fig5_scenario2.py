"""Fig. 5 — Scenario 2: short actions + batch under memory pressure.

12 x 2 GB datasets (24 GB > 16 GB of memory); the interactive working
set fills memory exactly, so immediate batch scheduling (FCFSL/FCFSU)
forces interactive/batch data swapping.  Paper result: FS/SF/FCFS poor;
FCFSL and FCFSU drop below half of the target framerate; OURS defers
batch, maintains an acceptable framerate, and still achieves the lowest
batch-job latency by minimizing total execution time.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    asserts_paper_shape,
    emit_json,
    emit_report,
    run_cached,
    summaries_for,
    summary_payload,
)
from repro.reporting.report import comparison_table

SCENARIO = 2


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_fig5_run(benchmark, scheduler):
    result = benchmark.pedantic(
        run_cached, args=(SCENARIO, scheduler), rounds=1, iterations=1
    )
    assert result.jobs_completed > 0


def test_fig5_report(benchmark):
    summaries = benchmark.pedantic(
        summaries_for, args=(SCENARIO, ALL_SCHEDULERS), rounds=1, iterations=1
    )
    by_name = {s.scheduler: s for s in summaries}
    text = comparison_table(
        summaries,
        title=(
            "Fig. 5 — Scenario 2 (8 nodes, 12x2GB datasets, interactive "
            "+ batch, 24GB > 16GB memory)"
        ),
        target_fps=100.0 / 3.0,
    )
    text += (
        "\npaper shape: FCFSL/FCFSU fall below half target from batch-"
        "induced swapping; OURS keeps the best framerate AND the lowest "
        "batch latency."
    )
    emit_report("fig5_scenario2", text)
    emit_json(
        "fig5",
        summary_payload(
            summaries, scenario=SCENARIO, scale=SCENARIO_SCALES[SCENARIO]
        ),
    )

    if not asserts_paper_shape(SCENARIO):
        return  # smoke scale: numbers regenerated, shape not asserted
    target = 100.0 / 3.0
    ours = by_name["OURS"]
    assert ours.interactive_fps > 0.5 * target
    assert ours.interactive_fps > by_name["FCFSL"].interactive_fps
    assert ours.interactive_fps > by_name["FCFSU"].interactive_fps
    assert by_name["FCFSU"].interactive_fps < 0.62 * target
    # OURS achieves the lowest batch latency among the locality-aware
    # schemes (the paper's headline for the bottom chart).
    assert ours.batch_latency < by_name["FCFSL"].batch_latency
    assert ours.batch_latency < by_name["FCFSU"].batch_latency

"""Fig. 4 — Scenario 1: pure workload balancing on the 8-node cluster.

Six persistent user actions over six fully cacheable 2 GB datasets.
Paper result: FS/SF/FCFS < 1 fps with long latencies; FCFSU achieves
~half the 33.33 fps target (it spends twice the computing resources per
job); OURS and FCFSL hit the target with near-zero latency.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    asserts_paper_shape,
    emit_json,
    emit_report,
    run_cached,
    summaries_for,
    summary_payload,
)
from repro.reporting.report import comparison_table

SCENARIO = 1


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_fig4_run(benchmark, scheduler):
    result = benchmark.pedantic(
        run_cached, args=(SCENARIO, scheduler), rounds=1, iterations=1
    )
    assert result.jobs_completed > 0


def test_fig4_report(benchmark):
    summaries = benchmark.pedantic(
        summaries_for, args=(SCENARIO, ALL_SCHEDULERS), rounds=1, iterations=1
    )
    by_name = {s.scheduler: s for s in summaries}
    text = comparison_table(
        summaries,
        title="Fig. 4 — Scenario 1 (8 nodes, 6x2GB datasets, no batch)",
        target_fps=100.0 / 3.0,
    )
    text += (
        "\npaper shape: FS/SF/FCFS < 1 fps; FCFSU ~ half target; "
        "OURS ~= FCFSL ~= target with lowest latencies."
    )
    emit_report("fig4_scenario1", text)
    emit_json(
        "fig4",
        summary_payload(
            summaries, scenario=SCENARIO, scale=SCENARIO_SCALES[SCENARIO]
        ),
    )

    if not asserts_paper_shape(SCENARIO):
        return  # smoke scale: numbers regenerated, shape not asserted
    target = 100.0 / 3.0
    assert by_name["OURS"].interactive_fps > 0.95 * target
    assert by_name["FCFSL"].interactive_fps > 0.95 * target
    assert 0.35 * target < by_name["FCFSU"].interactive_fps < 0.62 * target
    for name in ("FS", "SF", "FCFS"):
        assert by_name[name].interactive_fps < 0.1 * target

"""Simulator speed: wall-clock and events/sec across all scenarios.

The hot-path work (incremental ``ReplicaBucketIndex``, memoized cost
estimates, inlined completion/dispatch loops) is justified by this
bench: it runs Table II scenarios 1-4 under every registered scheduler
and emits both machine-dependent rates (``wall_s``, ``events_per_sec``
— reported, never gated) and *deterministic* algorithmic counters
(``events_processed``, ``tasks_executed``, and for OURS ``cycles_run``,
``backlog_chunks_sorted``, ``backlog_sorts_avoided``) that
``benchmarks/check_regressions.py`` gates bit-for-bit.  A change that
silently re-introduces per-cycle backlog re-sorting shows up as a
``backlog_sorts_avoided`` collapse even on a fast machine.

The ``reference`` block records the interleaved old/new measurement of
the optimization pass itself (full-scale Scenario 2 under OURS, six
alternating rounds of pre-PR vs. current source on one machine) so the
achieved speedup is part of the committed record rather than a claim in
a commit message.
"""

from __future__ import annotations

import time
from typing import Dict

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    emit_json,
    emit_report,
    get_scenario,
)
from repro.core.registry import make_scheduler
from repro.sim.simulator import run_simulation

#: Best-of-N wall clock per (scenario, scheduler) cell.  Two rounds is
#: the minimum that still cross-checks counter determinism; the wall
#: numbers are reported, never gated, so round-to-round noise is fine.
ROUNDS = 2

#: Deterministic counters (gated by check_regressions.py).  The OURS
#: backlog counters exist only on that scheduler.
OURS_COUNTERS = ("cycles_run", "backlog_chunks_sorted", "backlog_sorts_avoided")

#: Interleaved pre-PR vs. post-PR measurement of full-scale Scenario 2
#: under OURS (six alternating subprocess rounds each, same machine, to
#: cancel thermal/load noise).  Static record of the optimization pass;
#: identical in baseline and fresh results, so it never gates.
SPEEDUP_REFERENCE = {
    "scenario2_ours_full_scale": {
        "pre_pr_wall_s_avg": 2.170,
        "post_pr_wall_s_avg": 1.077,
        "speedup_avg": 2.01,
        "speedup_best_of_best": 2.07,
    }
}


def _measure(number: int, scheduler_name: str) -> Dict[str, float]:
    """Best-of-ROUNDS wall clock for one scenario x scheduler cell.

    Deterministic counters must not vary across rounds — a mismatch
    means the simulator lost determinism, which is worth failing loudly
    here rather than downstream in the golden-trace tests.
    """
    scenario = get_scenario(number)
    best: Dict[str, float] = {}
    for _ in range(ROUNDS):
        scheduler = make_scheduler(scheduler_name)
        start = time.perf_counter()
        result = run_simulation(scenario, scheduler)
        wall = time.perf_counter() - start
        sample = {
            "wall_s": wall,
            "events_per_sec": result.events_processed / wall,
            "events_processed": result.events_processed,
            "tasks_executed": result.tasks_executed,
        }
        for counter in OURS_COUNTERS:
            value = getattr(scheduler, counter, None)
            if value is not None:
                sample[counter] = value
        if best:
            for key in sample:
                if key not in ("wall_s", "events_per_sec"):
                    assert sample[key] == best[key], (
                        f"nondeterministic {key} for scenario {number} "
                        f"{scheduler_name}: {sample[key]} != {best[key]}"
                    )
        if not best or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def test_simulator_speed(benchmark):
    """Measure and persist per-scenario, per-scheduler speed numbers."""

    def run_all():
        return {
            f"scenario{number}": {
                name: _measure(number, name) for name in ALL_SCHEDULERS
            }
            for number in sorted(SCENARIO_SCALES)
        }

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {
        "bench": "speed",
        "scale": SCENARIO_SCALES[1],
        "scales": {str(n): s for n, s in sorted(SCENARIO_SCALES.items())},
        "rounds": ROUNDS,
        "scenarios": cells,
        "reference": SPEEDUP_REFERENCE,
    }
    out = emit_json("speed", payload)

    lines = [
        f"simulator speed — best of {ROUNDS} "
        f"(scales {payload['scales']})",
        "",
        f"{'scenario':>9} {'scheduler':>10} {'events/s':>12} "
        f"{'wall ms':>9} {'events':>9} {'tasks':>7}  OURS counters",
    ]
    for scenario_key, row in cells.items():
        for name, cell in row.items():
            extras = " ".join(
                f"{c}={cell[c]:,}" for c in OURS_COUNTERS if c in cell
            )
            lines.append(
                f"{scenario_key:>9} {name:>10} "
                f"{cell['events_per_sec']:>12,.0f} "
                f"{cell['wall_s'] * 1e3:>9.1f} "
                f"{cell['events_processed']:>9,} "
                f"{cell['tasks_executed']:>7,}  {extras}"
            )
    ref = SPEEDUP_REFERENCE["scenario2_ours_full_scale"]
    lines.append("")
    lines.append(
        "reference (interleaved pre/post measurement, full-scale "
        f"scenario 2, OURS): {ref['pre_pr_wall_s_avg']:.3f} s -> "
        f"{ref['post_pr_wall_s_avg']:.3f} s  "
        f"({ref['speedup_avg']:.2f}x avg, "
        f"{ref['speedup_best_of_best']:.2f}x best-of-best)"
    )
    lines.append(f"machine-readable: {out}")
    emit_report("speed", "\n".join(lines))

    # Sanity: every cell did real work, and the incremental backlog
    # index actually avoided sorts for OURS on every scenario.
    for scenario_key, row in cells.items():
        for name, cell in row.items():
            assert cell["events_processed"] > 0, (scenario_key, name)
        ours = row["OURS"]
        assert ours["cycles_run"] > 0
        assert ours["backlog_sorts_avoided"] >= 0
        assert (
            ours["backlog_sorts_avoided"] <= ours["backlog_chunks_sorted"]
        )

"""Simulator speed: wall-clock, events/sec, and the scaling curve.

The hot-path work (incremental ``ReplicaBucketIndex``, memoized cost
estimates, inlined completion/dispatch loops, the struct-of-arrays
tables backend, batched event insertion) is justified by this bench:
it runs Table II scenarios 1-4 under every registered scheduler
and emits both machine-dependent rates (``wall_s``, ``events_per_sec``
— reported, never gated) and *deterministic* algorithmic counters
(``events_processed``, ``tasks_executed``, and for OURS ``cycles_run``,
``backlog_chunks_sorted``, ``backlog_sorts_avoided``) that
``benchmarks/check_regressions.py`` gates bit-for-bit.  A change that
silently re-introduces per-cycle backlog re-sorting shows up as a
``backlog_sorts_avoided`` collapse even on a fast machine.

The **scaling curve** runs Scenario 2 under OURS at a ladder of
absolute scales (independent of ``REPRO_BENCH_SCALE``), once per
tables backend, and records events/s per point.  The deterministic
leaves of every curve point are gated; the two backends must agree on
them exactly (asserted here — a curve point is a cheap differential
test).  ``REPRO_BENCH_CURVE_MAX`` caps the ladder: CI sets ``0.2`` so
the smoke subset {0.05, 0.2} regenerates and gates, while local full
runs add the expensive points as warnings-only extras.

The ``reference`` block records the interleaved old/new measurements of
the optimization passes (full-scale Scenario 2 under OURS, six
alternating rounds of pre-PR vs. current source on one machine) so the
achieved speedups are part of the committed record rather than claims
in commit messages.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    emit_json,
    emit_report,
    get_scenario,
)
from repro.core.registry import make_scheduler
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

#: Best-of-N wall clock per (scenario, scheduler) cell.  Two rounds is
#: the minimum that still cross-checks counter determinism; the wall
#: numbers are reported, never gated, so round-to-round noise is fine.
ROUNDS = 2

#: Deterministic counters (gated by check_regressions.py).  The OURS
#: backlog counters exist only on that scheduler.
OURS_COUNTERS = ("cycles_run", "backlog_chunks_sorted", "backlog_sorts_avoided")

#: The scaling-curve ladder: absolute Scenario 2 scales (fractions of
#: the paper's 120 s trace), NOT affected by ``REPRO_BENCH_SCALE``.
#: Event counts grow roughly linearly with scale, so the ladder spans
#: ~4.5k to ~900k events.
CURVE_SCALES = (0.05, 0.2, 1.0, 3.0, 10.0)

#: Tables backends measured per curve point.
CURVE_BACKENDS = ("python", "numpy")


def curve_max() -> float:
    """Largest curve scale to run (``REPRO_BENCH_CURVE_MAX`` caps it).

    CI sets ``0.2``: the committed baseline carries exactly the
    {0.05, 0.2} smoke subset, so those points regenerate and gate on
    every build while local full-ladder runs only add warning-level
    extras (``check_regressions`` treats fresh-only leaves as
    warnings).
    """
    env = os.environ.get("REPRO_BENCH_CURVE_MAX")
    return float(env) if env else max(CURVE_SCALES)


#: Interleaved pre-PR vs. post-PR measurements of full-scale Scenario 2
#: under OURS (six alternating subprocess rounds each, same machine, to
#: cancel thermal/load noise).  Static record of the optimization
#: passes; identical in baseline and fresh results, so it never gates.
SPEEDUP_REFERENCE = {
    "scenario2_ours_full_scale": {
        "pre_pr_wall_s_avg": 2.170,
        "post_pr_wall_s_avg": 1.077,
        "speedup_avg": 2.01,
        "speedup_best_of_best": 2.07,
    },
    # The SoA-tables / batched-event-queue pass.  The event core was
    # already within ~2x of the Python floor after the pass above, so
    # the remaining wins (C-level namedtuple allocation, batched
    # assignment, pre-bound table hooks, drain-to-timestamp run loop)
    # land in the few-percent range at the paper's p=8; the SoA
    # backend's value at this size is differential testing and the
    # vectorized exclusion path, with headroom at large p.
    "scenario2_ours_full_scale_soa_pass": {
        "pre_pr_wall_s_avg": 0.904,
        "post_pr_wall_s_avg": 0.820,
        "speedup_avg": 1.10,
        "speedup_best_of_best": 1.05,
    },
}


def _measure(number: int, scheduler_name: str) -> Dict[str, float]:
    """Best-of-ROUNDS wall clock for one scenario x scheduler cell.

    Deterministic counters must not vary across rounds — a mismatch
    means the simulator lost determinism, which is worth failing loudly
    here rather than downstream in the golden-trace tests.
    """
    scenario = get_scenario(number)
    best: Dict[str, float] = {}
    for _ in range(ROUNDS):
        scheduler = make_scheduler(scheduler_name)
        start = time.perf_counter()
        result = run_simulation(scenario, scheduler)
        wall = time.perf_counter() - start
        sample = {
            "wall_s": wall,
            "events_per_sec": result.events_processed / wall,
            "events_processed": result.events_processed,
            "tasks_executed": result.tasks_executed,
        }
        for counter in OURS_COUNTERS:
            value = getattr(scheduler, counter, None)
            if value is not None:
                sample[counter] = value
        if best:
            for key in sample:
                if key not in ("wall_s", "events_per_sec"):
                    assert sample[key] == best[key], (
                        f"nondeterministic {key} for scenario {number} "
                        f"{scheduler_name}: {sample[key]} != {best[key]}"
                    )
        if not best or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def _measure_curve_point(scale: float) -> Dict[str, object]:
    """One scaling-curve point: Scenario 2 under OURS, both backends.

    Returns the deterministic counters (gated; asserted identical
    across backends — every curve run doubles as a backend differential
    test) plus per-backend wall-clock rates (reported, never gated).
    """
    scenario = get_scenario(2, scale)
    point: Dict[str, object] = {"scale": scale}
    deterministic: Dict[str, int] = {}
    for backend in CURVE_BACKENDS:
        config = RunConfig(tables_backend=backend)
        best_wall = None
        for _ in range(ROUNDS):
            scheduler = make_scheduler("OURS")
            start = time.perf_counter()
            result = run_simulation(scenario, scheduler, config=config)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
            sample = {
                "events_processed": result.events_processed,
                "tasks_executed": result.tasks_executed,
            }
            for counter in OURS_COUNTERS:
                sample[counter] = getattr(scheduler, counter)
            if deterministic:
                assert sample == deterministic, (
                    f"curve point scale={scale}: backend {backend!r} "
                    f"diverged from the reference counters: "
                    f"{sample} != {deterministic}"
                )
            else:
                deterministic = sample
        point[backend] = {
            "wall_s": best_wall,
            "events_per_sec": deterministic["events_processed"] / best_wall,
        }
    point.update(deterministic)
    return point


def test_simulator_speed(benchmark):
    """Measure and persist per-scenario, per-scheduler speed numbers."""

    def run_all():
        return {
            f"scenario{number}": {
                name: _measure(number, name) for name in ALL_SCHEDULERS
            }
            for number in sorted(SCENARIO_SCALES)
        }

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    cap = curve_max()
    curve = {
        str(scale): _measure_curve_point(scale)
        for scale in CURVE_SCALES
        if scale <= cap + 1e-9
    }

    payload = {
        "bench": "speed",
        "scale": SCENARIO_SCALES[1],
        "scales": {str(n): s for n, s in sorted(SCENARIO_SCALES.items())},
        "rounds": ROUNDS,
        "scenarios": cells,
        "curve": curve,
        # Named under the skipped ``scales*`` prefix: metadata, not a
        # gated number (CI caps at 0.2, local runs default to the full
        # ladder).
        "scales_curve_max": cap,
        "reference": SPEEDUP_REFERENCE,
    }
    out = emit_json("speed", payload)

    lines = [
        f"simulator speed — best of {ROUNDS} "
        f"(scales {payload['scales']})",
        "",
        f"{'scenario':>9} {'scheduler':>10} {'events/s':>12} "
        f"{'wall ms':>9} {'events':>9} {'tasks':>7}  OURS counters",
    ]
    for scenario_key, row in cells.items():
        for name, cell in row.items():
            extras = " ".join(
                f"{c}={cell[c]:,}" for c in OURS_COUNTERS if c in cell
            )
            lines.append(
                f"{scenario_key:>9} {name:>10} "
                f"{cell['events_per_sec']:>12,.0f} "
                f"{cell['wall_s'] * 1e3:>9.1f} "
                f"{cell['events_processed']:>9,} "
                f"{cell['tasks_executed']:>7,}  {extras}"
            )
    lines.append("")
    lines.append(
        f"scaling curve — scenario 2, OURS, both backends "
        f"(curve max {cap})"
    )
    lines.append(
        f"{'scale':>7} {'events':>9} {'tasks':>8} "
        f"{'python ev/s':>13} {'numpy ev/s':>13}"
    )
    for key, point in curve.items():
        lines.append(
            f"{key:>7} {point['events_processed']:>9,} "
            f"{point['tasks_executed']:>8,} "
            f"{point['python']['events_per_sec']:>13,.0f} "
            f"{point['numpy']['events_per_sec']:>13,.0f}"
        )
    lines.append("")
    for name, ref in SPEEDUP_REFERENCE.items():
        lines.append(
            f"reference {name} (interleaved pre/post, full-scale "
            f"scenario 2, OURS): {ref['pre_pr_wall_s_avg']:.3f} s -> "
            f"{ref['post_pr_wall_s_avg']:.3f} s  "
            f"({ref['speedup_avg']:.2f}x avg, "
            f"{ref['speedup_best_of_best']:.2f}x best-of-best)"
        )
    lines.append(f"machine-readable: {out}")
    emit_report("speed", "\n".join(lines))

    # Sanity: every cell did real work, and the incremental backlog
    # index actually avoided sorts for OURS on every scenario.
    for scenario_key, row in cells.items():
        for name, cell in row.items():
            assert cell["events_processed"] > 0, (scenario_key, name)
        ours = row["OURS"]
        assert ours["cycles_run"] > 0
        assert ours["backlog_sorts_avoided"] >= 0
        assert (
            ours["backlog_sorts_avoided"] <= ours["backlog_chunks_sorted"]
        )

    # Curve sanity: at least the smoke subset ran, every point did real
    # work, and event counts grow strictly with scale.
    assert len(curve) >= 2, "curve must cover at least {0.05, 0.2}"
    previous = 0
    for scale in sorted(float(k) for k in curve):
        point = curve[str(scale)]
        assert point["events_processed"] > previous, (
            f"curve point {scale}: events did not grow "
            f"({point['events_processed']} <= {previous})"
        )
        previous = point["events_processed"]

"""Table III — data reuse hit rates and average scheduling costs.

For each of the four scenarios and the FS / FCFSU / FCFSL / OURS
schemes, reports the executed-task cache hit rate and the measured
wall-clock scheduling cost per job in microseconds.  Reuses the
Fig. 4-7 simulation runs when they are in the session cache.

Paper shape: OURS and FCFSU ~99.8-100 % hit rates in every scenario,
FCFSL slightly lower (interactive/batch swapping), FS 8-29 %; OURS
costs less per job than FCFSU, and cycle-based schemes (FS, OURS)
amortize scheduling across the jobs of a cycle.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import (
    SCENARIO_SCALES,
    TABLE3_SCHEDULERS,
    asserts_paper_shape,
    emit_json,
    emit_report,
    run_cached,
)
from repro.reporting.report import hit_rate_table

PAPER_HIT_RATES = {
    1: {"FS": 8.01, "FCFSU": 99.95, "FCFSL": 99.94, "OURS": 99.94},
    2: {"FS": 28.63, "FCFSU": 99.86, "FCFSL": 99.72, "OURS": 99.91},
    3: {"FS": 12.19, "FCFSU": 99.97, "FCFSL": 99.74, "OURS": 99.91},
    4: {"FS": 10.67, "FCFSU": 99.86, "FCFSL": 99.51, "OURS": 99.76},
}
PAPER_COSTS = {
    1: {"FS": 32, "FCFSU": 60, "FCFSL": 65, "OURS": 33},
    2: {"FS": 36, "FCFSU": 72, "FCFSL": 74, "OURS": 53},
    3: {"FS": 677, "FCFSU": 2019, "FCFSL": 1002, "OURS": 1446},
    4: {"FS": 680, "FCFSU": 3459, "FCFSL": 1078, "OURS": 1392},
}


@pytest.mark.parametrize("scenario", [1, 2, 3, 4])
def test_table3_scenario(benchmark, scenario):
    def run_all():
        return {s: run_cached(scenario, s) for s in TABLE3_SCHEDULERS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    if not asserts_paper_shape(scenario):
        return  # smoke scale: numbers regenerated, shape not asserted
    # Locality-aware schemes keep near-perfect reuse in every scenario.
    for name in ("FCFSU", "FCFSL", "OURS"):
        assert results[name].hit_rate > 0.985, (scenario, name)
    # FS is far below the locality-aware schemes.
    assert results["FS"].hit_rate < results["OURS"].hit_rate - 0.05


def test_table3_report(benchmark):
    def build():
        return {
            f"scenario{n}": {
                s: run_cached(n, s).summary() for s in TABLE3_SCHEDULERS
            }
            for n in (1, 2, 3, 4)
        }

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = hit_rate_table(rows, TABLE3_SCHEDULERS)
    paper_lines = ["", "paper values for comparison:"]
    for n in (1, 2, 3, 4):
        hits = "  ".join(
            f"{s}={PAPER_HIT_RATES[n][s]:.2f}%" for s in TABLE3_SCHEDULERS
        )
        costs = "  ".join(
            f"{s}={PAPER_COSTS[n][s]}us" for s in TABLE3_SCHEDULERS
        )
        paper_lines.append(f"  scenario{n}: hit {hits}")
        paper_lines.append(f"  {'':>10} cost {costs}")
    paper_lines.append(
        "note: absolute scheduling costs depend on the host; the paper "
        "ran C++ on 2008-era Xeons, this harness measures the Python "
        "implementation. The orderings (FCFSU most expensive at scale, "
        "cycle-based FS/OURS amortized) are the reproduced shape."
    )
    emit_report("table3_hitrates", text + "\n" + "\n".join(paper_lines))
    # Hit rates are deterministic; scheduling costs are wall-clock and
    # stay out of the regression-gated payload.
    emit_json(
        "table3",
        {
            "scales": {str(n): SCENARIO_SCALES[n] for n in (1, 2, 3, 4)},
            "hit_rates": {
                scenario: {
                    s: summary.hit_rate for s, summary in by_sched.items()
                }
                for scenario, by_sched in rows.items()
            },
        },
    )

"""Table II — the four experiment scenarios.

Regenerates the configuration table: nodes, total memory, dataset
count/size, simulated length, and the batch/interactive job totals of
each generated workload (at the bench scale; job *rates* match the
paper at any scale, absolute counts match at ``REPRO_BENCH_SCALE=1``).
"""

from __future__ import annotations

from benchmarks._shared import SCENARIO_SCALES, emit_report, get_scenario
from repro.core.chunks import total_size
from repro.util.units import GiB

PAPER_ROWS = {
    1: (8, 16, 6, 12, 60, 0, 12006),
    2: (8, 16, 12, 24, 120, 2251, 21011),
    3: (64, 512, 32, 256, 300, 9844, 160633),
    4: (64, 512, 128, 1024, 600, 35176, 388481),
}


def test_table2_scenarios(benchmark):
    scenarios = benchmark(
        lambda: [get_scenario(n) for n in (1, 2, 3, 4)]
    )
    header = (
        f"{'#':<3}{'nodes':>6}{'mem(GB)':>9}{'#ds':>5}{'size(GB)':>10}"
        f"{'len(s)':>8}{'batch':>9}{'interactive':>13}{'tgt fps':>9}"
    )
    lines = [
        "Table II: four scenarios (generated at bench scale; "
        "paper counts in parentheses)",
        header,
        "-" * len(header),
    ]
    for n, sc in zip((1, 2, 3, 4), scenarios):
        p_nodes, p_mem, p_ds, p_size, p_len, p_b, p_i = PAPER_ROWS[n]
        scale = SCENARIO_SCALES[n]
        lines.append(
            f"{n:<3}{sc.system.node_count:>6}"
            f"{sc.system.total_memory // GiB:>9}"
            f"{len(sc.datasets):>5}"
            f"{total_size(sc.datasets) // GiB:>10}"
            f"{sc.trace.duration:>8.0f}"
            f"{sc.trace.batch_count:>9}"
            f"{sc.trace.interactive_count:>13}"
            f"{sc.target_framerate:>9.2f}"
        )
        lines.append(
            f"{'':<3}{p_nodes:>6}{p_mem:>9}{p_ds:>5}{p_size:>10}"
            f"{p_len:>8}{int(p_b * scale):>9}{int(p_i * scale):>13}"
            f"{33.33:>9.2f}   (paper x scale {scale:g})"
        )
        # Structural fields must match the paper exactly.
        assert sc.system.node_count == p_nodes
        assert sc.system.total_memory == p_mem * GiB
        assert len(sc.datasets) == p_ds
        assert total_size(sc.datasets) == p_size * GiB
    emit_report("table2_scenarios", "\n".join(lines))

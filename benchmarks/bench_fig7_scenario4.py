"""Fig. 7 — Scenario 4: heavy-load hybrid, 1 TB of data on 64 nodes.

128 x 8 GB datasets (twice the aggregate memory); interactive demand
slightly above sustainable capacity, so latencies soar for everyone
(the paper notes OURS reaches 27.767 s because jobs are pushed
unceasingly).  Paper result: OURS still delivers 22.98 fps — a 167.2 %
gain over FCFSL and 190.9 % over FCFSU — while maintaining reasonable
batch throughput.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    asserts_paper_shape,
    emit_json,
    emit_report,
    run_cached,
    summaries_for,
    summary_payload,
)
from repro.reporting.report import comparison_table

SCENARIO = 4


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_fig7_run(benchmark, scheduler):
    result = benchmark.pedantic(
        run_cached, args=(SCENARIO, scheduler), rounds=1, iterations=1
    )
    assert result.jobs_completed > 0


def test_fig7_report(benchmark):
    summaries = benchmark.pedantic(
        summaries_for, args=(SCENARIO, ALL_SCHEDULERS), rounds=1, iterations=1
    )
    by_name = {s.scheduler: s for s in summaries}
    ours = by_name["OURS"]
    fcfsl = by_name["FCFSL"]
    fcfsu = by_name["FCFSU"]
    text = comparison_table(
        summaries,
        title=(
            "Fig. 7 — Scenario 4 (64 ANL nodes, 128x8GB = 1TB, heavy "
            "hybrid load)"
        ),
        target_fps=100.0 / 3.0,
    )
    gain_l = 100.0 * ours.interactive_fps / max(fcfsl.interactive_fps, 1e-9)
    gain_u = 100.0 * ours.interactive_fps / max(fcfsu.interactive_fps, 1e-9)
    text += (
        f"\nOURS vs FCFSL: {gain_l:.1f} % (paper: 167.2 %); "
        f"OURS vs FCFSU: {gain_u:.1f} % (paper: 190.9 %).\n"
        "paper shape: latencies soar under unceasing load (OURS 27.8 s "
        "in the paper) but OURS keeps a high interactive framerate."
    )
    emit_report("fig7_scenario4", text)
    emit_json(
        "fig7",
        summary_payload(
            summaries, scenario=SCENARIO, scale=SCENARIO_SCALES[SCENARIO]
        ),
    )

    if not asserts_paper_shape(SCENARIO):
        return  # smoke scale: numbers regenerated, shape not asserted
    assert ours.interactive_fps > 1.4 * fcfsl.interactive_fps
    assert ours.interactive_fps > 1.5 * fcfsu.interactive_fps
    assert ours.interactive_fps > 15.0
    assert ours.interactive_latency > 1.0  # overload is visible

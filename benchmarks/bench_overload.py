"""Overload management — Scenario 2 over-subscribed 2.5x.

The paper's service accepts every request (§III, Algorithm 1); when the
offered load exceeds capacity the head-node queue grows without bound
and *every* session's latency diverges — the completed-job percentiles
just hide it, because the jobs that never finish are not counted
(survivorship bias).  This bench over-subscribes Scenario 2 by 2.5x and
runs OURS and FCFSL with and without the protective frontend
(admission cap + shed-oldest bounded queue + SLO-driven quality
ladder).  The honest score is the latency-SLO compliant fraction from
:class:`~repro.obs.slo.SLOMonitor`, whose windows with no completions
violate maximally: admitted sessions must spend strictly more of their
time inside the objective with the frontend than without it.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_json, emit_report
from repro.frontend import FrontendConfig
from repro.obs.slo import SLObjective, SLOMonitor
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

SCALE = bench_scale(0.5)
LOAD = 2.5
SCHEDULERS = ["FCFSL", "OURS"]
MODES = ["baseline", "protected"]

#: All three gates on: session cap, bounded queue shedding stale
#: requests, and the default quality ladder.
PROTECTED = FrontendConfig.protective(max_sessions=8, queue_limit=32)

#: "p99 interaction latency <= 250 ms" over 1 s sliding windows —
#: judged per admitted action, with empty windows counted as maximal
#: violations (an admitted user staring at a stalled frame is the
#: worst outcome, not a missing sample).
OBJECTIVE = SLObjective(kind="latency", target=0.25, quantile=99.0)

_RESULTS: dict = {}


def _run(scheduler: str, mode: str):
    key = (scheduler, mode)
    if key not in _RESULTS:
        frontend = PROTECTED if mode == "protected" else None
        _RESULTS[key] = run_simulation(
            make_scenario(2, scale=SCALE, load=LOAD),
            scheduler,
            config=RunConfig(frontend=frontend),
        )
    return _RESULTS[key]


def _compliance(result) -> float:
    return SLOMonitor([OBJECTIVE]).evaluate(result)[0].compliant_fraction


def _row(result) -> dict:
    out = {
        "interactive_fps": result.interactive_fps,
        "interactive_p99": result.interactive_latency.p99,
        "jobs_submitted": result.jobs_submitted,
        "jobs_completed": result.jobs_completed,
        "slo_compliant_fraction": _compliance(result),
    }
    if result.frontend is not None:
        fe = result.frontend
        out["frontend"] = {
            "requests_seen": fe.requests_seen,
            "forwarded": fe.forwarded,
            "rejected": fe.rejected,
            "shed": fe.shed,
            "frames_dropped": fe.frames_dropped,
            "final_quality_level": fe.final_quality_level,
        }
    return out


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("mode", MODES)
def test_overload_run(benchmark, scheduler, mode):
    result = benchmark.pedantic(
        _run, args=(scheduler, mode), rounds=1, iterations=1
    )
    assert result.jobs_submitted > 0


def test_overload_report(benchmark):
    def build():
        return {
            s: {m: _row(_run(s, m)) for m in MODES} for s in SCHEDULERS
        }

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    header = (
        f"{'sched':<7} {'mode':<10} {'fps':>8} {'p99(s)':>8} "
        f"{'done/sub':>11} {'compliant':>10}"
    )
    lines = [
        (
            f"Overload — Scenario 2 at {LOAD:g}x load (scale {SCALE:g}), "
            f"with/without the protective frontend"
        ),
        OBJECTIVE.describe(),
        header,
        "-" * len(header),
    ]
    for scheduler in SCHEDULERS:
        for mode in MODES:
            row = rows[scheduler][mode]
            lines.append(
                f"{scheduler:<7} {mode:<10} {row['interactive_fps']:>8.2f} "
                f"{row['interactive_p99']:>8.3f} "
                f"{row['jobs_completed']:>5}/{row['jobs_submitted']:<5} "
                f"{row['slo_compliant_fraction'] * 100:>9.2f}%"
            )
    lines.append(
        "shape: the unprotected service drowns — its completed-job "
        "percentiles look fine only because the backlog never finishes; "
        "the SLO windows (empty window = maximal violation) show admitted "
        "sessions meeting the objective strictly more of the time behind "
        "the frontend."
    )
    emit_report("overload", "\n".join(lines))
    emit_json(
        "overload",
        {
            "scenario": 2,
            "scale": SCALE,
            "load": LOAD,
            "objective": OBJECTIVE.describe(),
            "schedulers": rows,
        },
    )

    if SCALE < 0.5 - 1e-9:
        return  # smoke scale: numbers regenerated, shape not asserted
    for scheduler in SCHEDULERS:
        base = rows[scheduler]["baseline"]
        prot = rows[scheduler]["protected"]
        # Admitted sessions spend strictly more time inside the
        # objective behind the frontend, under both schedulers.
        assert (
            prot["slo_compliant_fraction"] > base["slo_compliant_fraction"]
        ), scheduler
        # The frontend actually engaged: it refused or shed work.
        fe = prot["frontend"]
        assert fe["forwarded"] < fe["requests_seen"], scheduler
        # What was admitted got served: no runaway backlog left behind.
        assert prot["jobs_completed"] >= 0.9 * prot["jobs_submitted"], scheduler

"""Fig. 9 — scheduling cost / framerate / latency versus dataset count.

The paper runs 16 ANL nodes with 8 GB datasets and mixed interactive +
batch jobs while growing the number of datasets in use.  Three panels:

* scheduling cost grows with the dataset count — the O(p * m log m)
  pre-processing that categorizes incoming tasks by chunk — but stays
  two to three orders of magnitude below the rendering time;
* the interactive framerate remains stable near the target;
* interactive latency stays low even when total data exceeds the
  aggregate memory capacity (16 x 8 GB = 128 GB here, exceeded from 24
  datasets up).
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.core.chunks import dataset_suite
from repro.reporting.report import sweep_table
from repro.sim.config import system_anl
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.batch import poisson_batch_stream
from repro.workload.scenarios import Scenario
from repro.workload.trace import merge_traces

DATASET_COUNTS = [8, 16, 32, 64, 128]
DURATION = 10.0 * bench_scale(1.0)
INTERACTIVE_ACTIONS = 4  # ~4 concurrent 33 fps actions fit 16 nodes

_RESULTS: dict = {}


def fig9_scenario(n_datasets: int) -> Scenario:
    system = system_anl(node_count=16)
    datasets = dataset_suite(n_datasets, 8 * GiB)
    # Interactive actions on a fixed-size working set (first datasets);
    # batch submissions range over all of them.
    action_datasets = [
        datasets[i % min(n_datasets, INTERACTIVE_ACTIONS)]
        for i in range(INTERACTIVE_ACTIONS)
    ]
    interactive = persistent_actions(
        action_datasets,
        DURATION,
        target_framerate=100.0 / 3.0,
        seed=7,
        name="fig9-interactive",
    )
    # Heavy batch pressure: the ε heuristic defers cold batch work while
    # interactive actions keep the nodes warm, so the head node carries
    # a standing backlog whose *chunk* diversity scales with the number
    # of datasets — the O(p * m log m) categorization cost of §VI-D.
    batch = poisson_batch_stream(
        datasets,
        DURATION,
        submission_rate=6.0,  # many small submissions: the backlog's
        mean_frames=15,  # chunk diversity then scales with #datasets
        seed=8,
        name="fig9-batch",
    )
    trace = merge_traces([interactive, batch], name=f"fig9-d{n_datasets}")
    return Scenario(name=f"fig9-d{n_datasets}", system=system, trace=trace)


_SCHEDULERS: dict = {}


def _run(n_datasets: int, early_exit: bool = False):
    key = (n_datasets, early_exit)
    if key not in _RESULTS:
        from repro.core.ours import OursScheduler

        scheduler = OursScheduler(early_exit=early_exit)
        _RESULTS[key] = run_simulation(fig9_scenario(n_datasets), scheduler)
        _SCHEDULERS[key] = scheduler
    return _RESULTS[key]


@pytest.mark.parametrize("n_datasets", DATASET_COUNTS)
def test_fig9_point(benchmark, n_datasets):
    result = benchmark.pedantic(_run, args=(n_datasets,), rounds=1, iterations=1)
    assert result.jobs_completed > 0


def test_fig9_report(benchmark):
    def build():
        return {
            "cost (us/job)": [_run(d).sched_cost_us for d in DATASET_COUNTS],
            "cost-earlyexit": [
                _run(d, early_exit=True).sched_cost_us for d in DATASET_COUNTS
            ],
            "fps": [_run(d).interactive_fps for d in DATASET_COUNTS],
            "latency (s)": [
                _run(d).interactive_latency.mean for d in DATASET_COUNTS
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    sort_work = {
        "sortwork/cyc": [
            _SCHEDULERS[(d, False)].backlog_chunks_sorted
            / max(_SCHEDULERS[(d, False)].cycles_run, 1)
            for d in DATASET_COUNTS
        ]
    }
    series.update(sort_work)
    text = sweep_table(
        "# datasets",
        DATASET_COUNTS,
        series,
        title=(
            "Fig. 9 — OURS vs dataset count (16 ANL nodes, 8GB datasets, "
            "mixed interactive+batch; memory capacity = 16 datasets)"
        ),
        fmt="{:>12.3f}",
    )
    text += (
        "\npaper shape: scheduling cost rises with datasets (O(p*m log m) "
        "chunk categorization) yet stays orders of magnitude below render "
        "time; framerate stays near target; latency stays low even past "
        "the memory capacity.\nThe cost-earlyexit column is this repo's "
        "optimization beyond the paper (skip batch phases when all nodes "
        "are booked past the cycle): it flattens the cost curve."
    )
    emit_report("fig9_cost_vs_datasets", text)

    fps = series["fps"]
    cost = series["cost (us/job)"]
    target = 100.0 / 3.0
    # Framerate stable near target across the sweep.
    assert min(fps) > 0.85 * target
    # The O(p * m log m) categorization work grows with the dataset
    # count — asserted on the deterministic sorted-chunk counter, which
    # unlike wall-clock time is immune to measurement noise.
    work = series["sortwork/cyc"]
    assert work[-1] > 2.0 * work[0]
    # Scheduling cost stays far below the per-task render time (~6.5 ms).
    assert max(cost) < 6500
    # Latency stays interactive even past memory capacity.
    assert max(series["latency (s)"]) < 2.0

"""Ablation — shared-file-server contention (paper §III, Fig. 1).

The paper's Fig. 1 shows rendering nodes fetching from local disks *or*
a network file server.  With a shared server, concurrent cold loads
divide its bandwidth, so I/O storms are self-amplifying: a scheduler
that triggers many simultaneous misses makes every miss slower.  This
ablation runs a cold-start Scenario 1 (no prewarm) under OURS and FCFS,
with local disks versus a shared server capped at one quarter of the
aggregate disk bandwidth, and reports the framerates: the locality-blind scheduler is
hurt disproportionately by contention.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.cluster.storage import StorageSpec
from repro.reporting.report import sweep_table
from repro.sim.simulator import run_simulation
from repro.util.units import MiB
from repro.workload.scenarios import scenario_1

SCALE = bench_scale(1.0)

_RESULTS: dict = {}


def _run(scheduler: str, shared: bool):
    key = (scheduler, shared)
    if key not in _RESULTS:
        sc = scenario_1(scale=SCALE)
        storage = StorageSpec(
            bandwidth=100 * MiB,
            latency=0.010,
            shared_bandwidth=400 * MiB if shared else None,
        )
        sc = replace(
            sc,
            system=sc.system.with_overrides(storage=storage),
            prewarm=False,  # cold start: loads happen during the run
        )
        _RESULTS[key] = run_simulation(sc, scheduler)
    return _RESULTS[key]


@pytest.mark.parametrize("scheduler", ["OURS", "FCFS"])
@pytest.mark.parametrize("shared", [False, True])
def test_contention_point(benchmark, scheduler, shared):
    result = benchmark.pedantic(
        _run, args=(scheduler, shared), rounds=1, iterations=1
    )
    assert result.jobs_submitted > 0


def test_contention_report(benchmark):
    def build():
        return {
            "OURS fps": [
                _run("OURS", False).interactive_fps,
                _run("OURS", True).interactive_fps,
            ],
            "FCFS fps": [
                _run("FCFS", False).interactive_fps,
                _run("FCFS", True).interactive_fps,
            ],
            "FCFS loads": [
                float(_run("FCFS", False).tasks_missed),
                float(_run("FCFS", True).tasks_missed),
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "storage (0=local disks, 1=shared 400MiB/s server)",
        [0, 1],
        series,
        title=(
            "Ablation — file-server contention, cold-start Scenario 1 "
            "(no prewarm)"
        ),
        fmt="{:>12.2f}",
    )
    text += (
        "\nshape: OURS pays each chunk's load once (one miss per chunk, "
        "then locality), so contention barely matters; FCFS's scattered "
        "placement re-loads chunks continuously, and a shared server "
        "makes every one of those loads slower."
    )
    emit_report("ablation_contention", text)

    # OURS loses only its one-time warm-up to contention; it stays far
    # ahead of FCFS in both regimes.
    assert series["OURS fps"][1] > 0.5 * series["OURS fps"][0]
    assert series["OURS fps"][0] > 5 * series["FCFS fps"][0]
    assert series["OURS fps"][1] > 5 * series["FCFS fps"][1]
    # FCFS keeps re-loading data; OURS pays each chunk once.
    assert _run("FCFS", False).tasks_missed > 1.5 * _run("OURS", False).tasks_missed

"""Report overhead: timeline extraction + render cost on Scenario 2.

The ``repro report`` pipeline post-processes a traced run — extraction
joins spans/audit/causal/fault data into the timeline model, then the
renderer emits the SVG/HTML.  Both stages must stay a small fraction of
the simulation they describe, or nobody generates reports routinely.
This bench measures the three stages (simulate, extract, render) on a
smoke-scale Scenario 2 A/B pair and emits
``benchmarks/results/BENCH_report.json`` for the regression gate.

The payload's deterministic leaves (segment/residency/marker counts and
output byte sizes) pin the report *content*: a renderer change that
silently drops half the Gantt, or a tracer change that stops emitting
cache instants, shifts these counts and fails the gate even though no
timing moved.
"""

from __future__ import annotations

import time
from typing import Dict

from benchmarks._shared import bench_scale, emit_json, emit_report
from repro.obs import (
    AuditConfig,
    Tracer,
    first_divergence,
    render_report_html,
    render_timeline_svg,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_2

SCALE = bench_scale(0.05)
SCHEDULERS = ("OURS", "FCFS")
BINS = 60


def _run_pipeline() -> Dict[str, Dict[str, float]]:
    """One full report build, timed per stage."""
    sample: Dict[str, Dict[str, float]] = {}
    results, models = [], []
    sim_wall = extract_wall = 0.0
    for name in SCHEDULERS:
        scenario = scenario_2(scale=SCALE)
        start = time.perf_counter()
        result = run_simulation(
            scenario,
            name,
            config=RunConfig(
                tracer=Tracer(), audit=AuditConfig(capacity=None)
            ),
        )
        sim_wall += time.perf_counter() - start
        start = time.perf_counter()
        model = result.timeline()
        extract_wall += time.perf_counter() - start
        results.append(result)
        models.append(model)
    start = time.perf_counter()
    svg = render_timeline_svg(models[0], bins=BINS)
    svg_wall = time.perf_counter() - start
    divergence = first_divergence(
        list(results[0].audit), list(results[1].audit)
    )
    start = time.perf_counter()
    page = render_report_html(models, divergence=divergence, bins=BINS)
    html_wall = time.perf_counter() - start
    model = models[0]
    sample["timing"] = {
        "wall_s": sim_wall + extract_wall + svg_wall + html_wall,
        "simulate_wall_s": sim_wall,
        "extract_wall_s": extract_wall,
        "render_svg_wall_s": svg_wall,
        "render_html_wall_s": html_wall,
    }
    # Deterministic content pins (virtual-time derived, byte-stable).
    sample["content"] = {
        "segments": float(len(model.segments)),
        "residency_spans": float(len(model.residency)),
        "datasets": float(len(model.datasets)),
        "markers": float(len(model.markers)),
        "paths": float(len(model.paths)),
        "svg_bytes": float(len(svg.encode("utf-8"))),
        "html_bytes": float(len(page.encode("utf-8"))),
    }
    return sample


def test_report_overhead(benchmark):
    """Measure and persist report extraction/render cost + content pins."""
    sample = benchmark.pedantic(_run_pipeline, rounds=1, iterations=1)
    timing = sample["timing"]
    content = sample["content"]

    payload = {
        "bench": "report_overhead",
        "scenario": "scenario2",
        "scale": SCALE,
        "schedulers": list(SCHEDULERS),
        "bins": BINS,
        "results": sample,
    }
    out = emit_json("report", payload)

    post_wall = (
        timing["extract_wall_s"]
        + timing["render_svg_wall_s"]
        + timing["render_html_wall_s"]
    )
    lines = [
        f"report overhead — scenario 2 A/B ({'+'.join(SCHEDULERS)}), "
        f"scale {SCALE}",
        "",
        f"   simulate: {timing['simulate_wall_s'] * 1e3:8.1f} ms",
        f"    extract: {timing['extract_wall_s'] * 1e3:8.1f} ms",
        f" render svg: {timing['render_svg_wall_s'] * 1e3:8.1f} ms",
        f"render html: {timing['render_html_wall_s'] * 1e3:8.1f} ms",
        "",
        f"segments {content['segments']:,.0f} · residency spans "
        f"{content['residency_spans']:,.0f} · svg "
        f"{content['svg_bytes'] / 1024:,.0f} KiB · html "
        f"{content['html_bytes'] / 1024:,.0f} KiB",
        f"machine-readable: {out}",
    ]
    emit_report("report_overhead", "\n".join(lines))

    # The report stages must stay cheap relative to the simulation they
    # describe (generous bounds: shared CI machines are noisy).
    assert content["segments"] > 0
    assert content["residency_spans"] > 0
    assert content["html_bytes"] > content["svg_bytes"] > 0
    assert post_wall < max(4.0 * timing["simulate_wall_s"], 5.0)

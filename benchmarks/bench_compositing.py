"""Supplementary — image compositing algorithms (paper §II-A, §V-C).

The paper builds on binary swap [12] and the 2-3 swap extension [13]
that the implementation uses for parallel image compositing.  This
bench compares the three implemented algorithms on real images: wall-
clock time of the in-process implementation, plus the modeled traffic
(messages, bytes, stages, link-model elapsed) that motivates swap
algorithms over direct send at scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._shared import emit_report
from repro.reporting.report import sweep_table
from repro.render.compositing import composite

RANKS = [4, 8, 16, 32]
ALGORITHMS = ["serial-gather", "direct-send", "binary-swap", "2-3-swap"]
H = W = 256

_TRAFFIC: dict = {}


def _images(p: int):
    rng = np.random.default_rng(p)
    images = []
    for _ in range(p):
        a = rng.uniform(0, 1, (H, W, 1)).astype(np.float32)
        images.append(
            np.concatenate(
                [rng.uniform(0, 1, (H, W, 3)).astype(np.float32) * a, a],
                axis=-1,
            )
        )
    return images


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_compositing_speed(benchmark, algorithm):
    images = _images(8)
    result = benchmark(composite, images, algorithm=algorithm)
    _TRAFFIC[(8, algorithm)] = result
    assert result.image.shape == (H, W, 4)


def test_compositing_traffic_report(benchmark):
    def build():
        out = {}
        for algo in ALGORITHMS:
            elapsed = []
            for p in RANKS:
                result = composite(_images(p), algorithm=algo)
                elapsed.append(result.elapsed * 1e3)
                _TRAFFIC[(p, algo)] = result
            out[algo] = elapsed
        return out

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "# ranks",
        RANKS,
        series,
        title=(
            "Compositing: modeled link time (ms) per algorithm "
            f"({H}x{W} RGBA images)"
        ),
        fmt="{:>12.3f}",
    )
    lines = ["", "traffic at 32 ranks:"]
    for algo in ALGORITHMS:
        r = _TRAFFIC[(32, algo)]
        lines.append(
            f"  {algo:<12} messages={r.messages:>5}  "
            f"bytes={r.bytes_sent/2**20:8.1f} MiB  stages={r.stages}"
        )
    lines.append(
        "shape: direct send needs p(p-1) messages; the swap family runs "
        "O(log p) stages of shrinking pieces and scales to large groups "
        "— why the paper composites with 2-3 swap."
    )
    emit_report("compositing_algorithms", text + "\n" + "\n".join(lines))

    sg = series["serial-gather"]
    ds = series["direct-send"]
    tts = series["2-3-swap"]
    assert tts[-1] < ds[-1]  # swap beats direct send at 32 ranks
    assert tts[-1] < sg[-1]  # and the naive root gather

"""Tracing overhead: events/sec with tracing disabled vs fully on.

The observability layer must be free when off — hot paths hold ``None``
and skip instrumentation with one identity check — and cheap enough
when on that traced runs stay practical.  This bench measures the
simulator's event-processing rate five ways (untraced, ``NullTracer``,
full ``Tracer`` + counter sampling, metrics registry + window sampler,
decision audit log) on Scenario 1 and emits the numbers both as a text
report and as machine-readable
``benchmarks/results/BENCH_tracer.json`` for regression tracking.  The
audit sample also carries the log's deterministic decision counters, so
the regression gate pins the decision stream itself, not just its cost.
"""

from __future__ import annotations

import json
import time
from typing import Dict

from benchmarks._shared import RESULTS_DIR, bench_scale, emit_report
from repro.obs.audit import AuditConfig
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1

# Overhead ratios need enough events to be signal rather than timing
# noise, so smoke-scale overrides (CI's REPRO_BENCH_SCALE=0.05) are
# floored; larger overrides still apply.
SCALE = max(bench_scale(0.25), 0.25)
ROUNDS = 5


def _measure_once(
    tracer_factory, metrics: bool = False, audit: bool = False
) -> Dict[str, float]:
    """Events/sec for one run of one observability configuration."""
    scenario = scenario_1(scale=SCALE)
    tracer = tracer_factory() if tracer_factory else None
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            tracer=tracer,
            metrics=metrics,
            audit=AuditConfig() if audit else False,
        ),
    )
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    sample = {
        "events": float(result.events_processed),
        "wall_s": wall,
        # The rate divides CPU time, not wall time: the overhead ratios
        # below compare one config's rate against another's, and CPU
        # time is immune to co-tenant load stealing cycles mid-block
        # (wall_s is kept for the human report only).
        "cpu_s": cpu,
        "events_per_sec": result.events_processed / cpu,
        "trace_events": float(len(tracer)) if tracer is not None else 0.0,
    }
    if audit:
        # Deterministic decision counters — same trace, same stream,
        # every run; the regression gate compares these exactly.
        log = result.audit
        sample["audit_decisions"] = float(log.total_recorded)
        for reason, count in sorted(log.reason_counts().items()):
            sample[f"audit_{reason.replace('-', '_')}"] = float(count)
    return sample


#: The configurations under comparison, in measurement order.
_CONFIGS = {
    "untraced": dict(tracer_factory=None),
    "null_tracer": dict(tracer_factory=NullTracer),
    "full_tracer": dict(tracer_factory=Tracer),
    "metrics_registry": dict(tracer_factory=None, metrics=True),
    "audit": dict(tracer_factory=None, audit=True),
}


def test_tracer_overhead(benchmark):
    """Measure and persist the disabled/null/full tracing rates."""

    def run_all():
        # Rounds are interleaved across configurations (round-robin, best
        # of N per config) so slow machine-load drift hits every config
        # roughly equally instead of skewing whichever block ran last —
        # the ratios below divide one config's rate by another's.
        best: Dict[str, Dict[str, float]] = {}
        for _ in range(ROUNDS):
            for name, kwargs in _CONFIGS.items():
                sample = _measure_once(**kwargs)
                if (
                    name not in best
                    or sample["events_per_sec"]
                    > best[name]["events_per_sec"]
                ):
                    best[name] = sample
        return best

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = rates["untraced"]["events_per_sec"]
    null_ratio = rates["null_tracer"]["events_per_sec"] / base
    full_ratio = rates["full_tracer"]["events_per_sec"] / base
    metrics_ratio = (
        rates["metrics_registry"]["events_per_sec"]
        / rates["null_tracer"]["events_per_sec"]
    )
    audit_ratio = (
        rates["audit"]["events_per_sec"]
        / rates["null_tracer"]["events_per_sec"]
    )

    payload = {
        "bench": "tracer_overhead",
        "scenario": "scenario1",
        "scale": SCALE,
        "scheduler": "OURS",
        "rounds": ROUNDS,
        "results": rates,
        "null_tracer_relative_rate": null_ratio,
        "full_tracer_relative_rate": full_ratio,
        "metrics_registry_relative_rate": metrics_ratio,
        "audit_relative_rate": audit_ratio,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_tracer.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["tracer overhead — scenario 1, OURS, best of "
             f"{ROUNDS} (scale {SCALE})", ""]
    for name, r in rates.items():
        lines.append(
            f"{name:>12}: {r['events_per_sec']:>12,.0f} events/s "
            f"({r['events']:,.0f} events, {r['wall_s']*1e3:.1f} ms, "
            f"{r['trace_events']:,.0f} trace events)"
        )
    lines.append("")
    lines.append(f"null tracer relative rate: {null_ratio:.3f}")
    lines.append(f"full tracer relative rate: {full_ratio:.3f}")
    lines.append(f"metrics registry relative rate (vs null): {metrics_ratio:.3f}")
    lines.append(f"audit relative rate (vs null): {audit_ratio:.3f}")
    lines.append(
        f"audit decisions: {rates['audit']['audit_decisions']:,.0f}"
    )
    lines.append(f"machine-readable: {out}")
    emit_report("tracer_overhead", "\n".join(lines))

    # Disabled tracing must be ~free (generous bound: timing noise on
    # shared CI machines), and full tracing must not cripple the run.
    assert null_ratio > 0.80
    assert full_ratio > 0.25
    assert rates["full_tracer"]["trace_events"] > 0
    assert rates["null_tracer"]["trace_events"] == 0
    # The metrics registry (counters/histograms + window sampler) must
    # not dominate the event-processing rate.  The bound was 0.90 before
    # the simulator hot-path pass roughly doubled the base event rate:
    # the registry's absolute per-event cost is unchanged, but it is now
    # a larger *fraction* of a much faster loop (and the ratio is
    # wall-clock derived, so shared machines add noise on top).
    assert metrics_ratio >= 0.60
    # The audit log rides the scheduler hot path (one record per
    # assignment + candidate snapshot); its budget is 15% over the
    # NullTracer rate.
    assert audit_ratio >= 0.85
    assert rates["audit"]["audit_decisions"] > 0

"""Tracing overhead: events/sec with tracing disabled vs fully on.

The observability layer must be free when off — hot paths hold ``None``
and skip instrumentation with one identity check — and cheap enough
when on that traced runs stay practical.  This bench measures the
simulator's event-processing rate four ways (untraced, ``NullTracer``,
full ``Tracer`` + counter sampling, metrics registry + window sampler)
on Scenario 1 and emits the numbers both as a text report and as
machine-readable ``benchmarks/results/BENCH_tracer.json`` for
regression tracking.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional

from benchmarks._shared import RESULTS_DIR, bench_scale, emit_report
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1

# Overhead ratios need enough events to be signal rather than timing
# noise, so smoke-scale overrides (CI's REPRO_BENCH_SCALE=0.05) are
# floored; larger overrides still apply.
SCALE = max(bench_scale(0.25), 0.25)
ROUNDS = 3


def _measure(tracer_factory, metrics: bool = False) -> Dict[str, float]:
    """Best-of-N events/sec for one observability configuration."""
    best: Optional[Dict[str, float]] = None
    for _ in range(ROUNDS):
        scenario = scenario_1(scale=SCALE)
        tracer = tracer_factory() if tracer_factory else None
        start = time.perf_counter()
        result = run_simulation(
            scenario, "OURS", config=RunConfig(tracer=tracer, metrics=metrics)
        )
        wall = time.perf_counter() - start
        sample = {
            "events": float(result.events_processed),
            "wall_s": wall,
            "events_per_sec": result.events_processed / wall,
            "trace_events": float(len(tracer)) if tracer is not None else 0.0,
        }
        if best is None or sample["events_per_sec"] > best["events_per_sec"]:
            best = sample
    assert best is not None
    return best


def test_tracer_overhead(benchmark):
    """Measure and persist the disabled/null/full tracing rates."""

    def run_all():
        return {
            "untraced": _measure(None),
            "null_tracer": _measure(NullTracer),
            "full_tracer": _measure(Tracer),
            "metrics_registry": _measure(None, metrics=True),
        }

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = rates["untraced"]["events_per_sec"]
    null_ratio = rates["null_tracer"]["events_per_sec"] / base
    full_ratio = rates["full_tracer"]["events_per_sec"] / base
    metrics_ratio = (
        rates["metrics_registry"]["events_per_sec"]
        / rates["null_tracer"]["events_per_sec"]
    )

    payload = {
        "bench": "tracer_overhead",
        "scenario": "scenario1",
        "scale": SCALE,
        "scheduler": "OURS",
        "rounds": ROUNDS,
        "results": rates,
        "null_tracer_relative_rate": null_ratio,
        "full_tracer_relative_rate": full_ratio,
        "metrics_registry_relative_rate": metrics_ratio,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_tracer.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["tracer overhead — scenario 1, OURS, best of "
             f"{ROUNDS} (scale {SCALE})", ""]
    for name, r in rates.items():
        lines.append(
            f"{name:>12}: {r['events_per_sec']:>12,.0f} events/s "
            f"({r['events']:,.0f} events, {r['wall_s']*1e3:.1f} ms, "
            f"{r['trace_events']:,.0f} trace events)"
        )
    lines.append("")
    lines.append(f"null tracer relative rate: {null_ratio:.3f}")
    lines.append(f"full tracer relative rate: {full_ratio:.3f}")
    lines.append(f"metrics registry relative rate (vs null): {metrics_ratio:.3f}")
    lines.append(f"machine-readable: {out}")
    emit_report("tracer_overhead", "\n".join(lines))

    # Disabled tracing must be ~free (generous bound: timing noise on
    # shared CI machines), and full tracing must not cripple the run.
    assert null_ratio > 0.80
    assert full_ratio > 0.25
    assert rates["full_tracer"]["trace_events"] > 0
    assert rates["null_tracer"]["trace_events"] == 0
    # The metrics registry (counters/histograms + window sampler) must
    # not dominate the event-processing rate.  The bound was 0.90 before
    # the simulator hot-path pass roughly doubled the base event rate:
    # the registry's absolute per-event cost is unchanged, but it is now
    # a larger *fraction* of a much faster loop (and the ratio is
    # wall-clock derived, so shared machines add noise on top).
    assert metrics_ratio >= 0.60

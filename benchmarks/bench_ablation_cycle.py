"""Ablation — the scheduling cycle ω (paper §V-A).

"We carefully choose the scheduling cycle ω so that interactive jobs can
be scheduled timely with minimal scheduling overhead."  This sweep runs
Scenario 2 under OURS with ω from 2 ms to 120 ms:

* a tiny ω schedules each job almost alone (no amortization, more
  invocations → higher per-job cost),
* a large ω delays every interactive job by up to ω (latency floor
  rises and the framerate dips as λ-bounded batch filling coarsens).
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.core.ours import OursScheduler
from repro.reporting.report import sweep_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_2

CYCLES_MS = [2, 5, 15, 45, 120]
SCALE = bench_scale(0.5)

_RESULTS: dict = {}
_SCENARIO = None


def _run(cycle_ms: int):
    global _SCENARIO
    if _SCENARIO is None:
        _SCENARIO = scenario_2(scale=SCALE)
    if cycle_ms not in _RESULTS:
        scheduler = OursScheduler(cycle=cycle_ms / 1000.0)
        _RESULTS[cycle_ms] = run_simulation(_SCENARIO, scheduler)
    return _RESULTS[cycle_ms]


@pytest.mark.parametrize("cycle_ms", CYCLES_MS)
def test_ablation_cycle_point(benchmark, cycle_ms):
    result = benchmark.pedantic(_run, args=(cycle_ms,), rounds=1, iterations=1)
    assert result.jobs_completed > 0


def test_ablation_cycle_report(benchmark):
    def build():
        return {
            "fps": [_run(c).interactive_fps for c in CYCLES_MS],
            "latency (s)": [
                _run(c).interactive_latency.mean for c in CYCLES_MS
            ],
            "cost (us/job)": [_run(c).sched_cost_us for c in CYCLES_MS],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "omega (ms)",
        CYCLES_MS,
        series,
        title="Ablation — scheduling cycle sweep, Scenario 2 under OURS",
        fmt="{:>12.3f}",
    )
    text += (
        "\npaper shape (§V-A): omega must keep interactive scheduling "
        "timely (small enough) while amortizing scheduling work (large "
        "enough); the paper's regime is a constant short period around "
        "the request interval."
    )
    emit_report("ablation_cycle", text)

    fps = dict(zip(CYCLES_MS, series["fps"]))
    # A 120 ms cycle (4 frames of delay per schedule) costs framerate
    # versus the default 15 ms.
    assert fps[120] < fps[15]

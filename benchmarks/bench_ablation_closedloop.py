"""Ablation — open-loop vs closed-loop users under overload.

The paper measures open-loop (one request per 30 ms, unconditionally)
and notes about its overloaded Scenario 4: "latencies soar … because
rendering jobs are unceasingly pushed into the system.  But in a real
scenario, users usually do not continuously make actions and would stop
the interactions when they sense a lag."  This ablation quantifies that
remark: ten users share an 8-node cluster that can only sustain about
six at the target framerate, once driven open-loop and once closed-loop
(each user pauses at three outstanding frames).

Expected shape: both modes deliver the capacity-limited ~20 fps per
user, but open-loop latency grows with the backlog (seconds and rising)
while closed-loop latency stays bounded near window x service time
(~0.1 s).
"""

from __future__ import annotations

from benchmarks._shared import bench_scale, emit_report
from repro.core.chunks import dataset_suite
from repro.reporting.report import sweep_table
from repro.sim.config import system_linux8
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.closedloop import run_closed_loop
from repro.workload.scenarios import Scenario

DURATION = 30.0 * bench_scale(1.0)
USERS = 10  # ~1.6x the sustainable interactive load

_RESULTS: dict = {}


def _open_loop():
    if "open" not in _RESULTS:
        datasets = dataset_suite(6, 2 * GiB)
        trace = persistent_actions(
            datasets,
            DURATION,
            actions=USERS,
            target_framerate=100.0 / 3.0,
            seed=33,
            name="openloop",
        )
        scenario = Scenario(
            name="openloop", system=system_linux8(), trace=trace
        )
        _RESULTS["open"] = run_simulation(scenario, "OURS")
    return _RESULTS["open"]


def _closed_loop():
    if "closed" not in _RESULTS:
        datasets = dataset_suite(6, 2 * GiB)
        _RESULTS["closed"] = run_closed_loop(
            system_linux8(),
            datasets,
            scheduler="OURS",
            users=USERS,
            duration=DURATION,
            window=3,
        )
    return _RESULTS["closed"]


def test_openloop_run(benchmark):
    result = benchmark.pedantic(_open_loop, rounds=1, iterations=1)
    assert result.jobs_submitted > 0


def test_closedloop_run(benchmark):
    result = benchmark.pedantic(_closed_loop, rounds=1, iterations=1)
    assert result.issued > 0


def test_closedloop_report(benchmark):
    def build():
        open_r = _open_loop()
        closed_r = _closed_loop()
        open_fps = open_r.interactive_fps
        closed_fps = sum(closed_r.delivered_fps_per_user().values()) / USERS
        return {
            "open loop": [
                open_fps,
                open_r.interactive_latency.mean,
                float(open_r.jobs_submitted),
            ],
            "closed loop": [
                closed_fps,
                closed_r.mean_interactive_latency(),
                float(closed_r.issued),
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "row (0=fps/user, 1=mean latency s, 2=requests issued)",
        [0, 1, 2],
        series,
        title=(
            f"Ablation — open vs closed loop, {USERS} users on 8 nodes "
            f"(~1.6x sustainable load), OURS"
        ),
        fmt="{:>12.3f}",
    )
    text += (
        "\nshape: identical capacity-bound throughput, but the open loop "
        "buys it with unbounded queueing latency while closed-loop users "
        "('stop when they sense a lag', paper §VI-C) keep latency near "
        "window x service time."
    )
    emit_report("ablation_closedloop", text)

    open_lat = series["open loop"][1]
    closed_lat = series["closed loop"][1]
    assert closed_lat < 0.3
    assert open_lat > 5 * closed_lat
    # Throughput within ~20% of each other (both capacity-bound).
    assert abs(series["open loop"][0] - series["closed loop"][0]) < 0.25 * max(
        series["open loop"][0], series["closed loop"][0]
    )

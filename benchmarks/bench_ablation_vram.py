"""Ablation — explicit video-memory modeling (the paper's future work).

The paper's cost model folds the host→VRAM upload into the I/O term and
ignores it on main-memory hits; its conclusion lists "minimize the data
transfer between main memory and video memory" as future work.  This
ablation runs Scenario 1 with the explicit VRAM model enabled
(:class:`repro.cluster.gpu.GpuMemoryModel`): each node's GTX 285 holds
1 GiB (two 512 MiB chunks), while OURS concentrates three chunks per
node — so every third task re-uploads, and the achievable framerate
drops measurably below the VRAM-blind model's.  This quantifies how
much headroom the future-work optimization is worth.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks._shared import bench_scale, emit_report
from repro.reporting.report import sweep_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1

SCALE = bench_scale(0.5)

_RESULTS: dict = {}


def _run(model_vram: bool):
    if model_vram not in _RESULTS:
        sc = scenario_1(scale=SCALE)
        if model_vram:
            sc = replace(sc, system=sc.system.with_overrides(model_vram=True))
        _RESULTS[model_vram] = run_simulation(sc, "OURS")
    return _RESULTS[model_vram]


def test_ablation_vram_off(benchmark):
    result = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    assert result.jobs_completed > 0


def test_ablation_vram_on(benchmark):
    result = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    assert result.jobs_completed > 0


def test_ablation_vram_report(benchmark):
    def build():
        off = _run(False)
        on = _run(True)
        return {
            "paper model (VRAM folded)": [
                off.interactive_fps,
                off.interactive_latency.mean,
                off.hit_rate * 100,
            ],
            "explicit VRAM (future work)": [
                on.interactive_fps,
                on.interactive_latency.mean,
                on.hit_rate * 100,
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "metric",
        [0, 1, 2],
        series,
        title=(
            "Ablation — Scenario 1 under OURS, with and without explicit "
            "VRAM modeling\nrows: 0 = fps, 1 = mean interactive latency "
            "(s), 2 = main-memory hit rate (%)"
        ),
        fmt="{:>12.3f}",
    )
    on = _run(True)
    text += (
        "\ninterpretation: with 1 GiB VRAM per GTX 285 and ~3 chunks "
        "concentrated per node by OURS, host->VRAM re-uploads throttle "
        "the framerate the paper's cost model predicts — quantifying the "
        "benefit of the paper's stated future-work optimization."
    )
    emit_report("ablation_vram", text)

    off = _run(False)
    assert on.interactive_fps < off.interactive_fps
    # Main-memory behaviour itself is unchanged.
    assert abs(on.hit_rate - off.hit_rate) < 0.01

"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Simulation
runs are cached per (scenario, scale, scheduler) within a pytest
session so that Table III can reuse the Fig. 4-7 runs, and every report
is both printed (visible with ``pytest -s`` / in the benchmark summary)
and written to ``benchmarks/results/<name>.txt``.

Scales default to values that keep a full ``pytest benchmarks/
--benchmark-only`` run in the ~10-minute range; set the environment
variable ``REPRO_BENCH_SCALE=1.0`` to run every scenario at the paper's
full duration.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.reporting.analysis import SchedulerSummary
from repro.sim.simulator import SimulationResult, run_simulation
from repro.workload.scenarios import Scenario, make_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's figure order for scheduler comparisons.
from repro.core.registry import PAPER_SCHEDULERS as ALL_SCHEDULERS  # noqa: E402
#: The Table III column subset.
TABLE3_SCHEDULERS = ["FS", "FCFSU", "FCFSL", "OURS"]


def bench_scale(default: float) -> float:
    """Scenario scale for benches, overridable via REPRO_BENCH_SCALE."""
    env = os.environ.get("REPRO_BENCH_SCALE")
    return float(env) if env else default


#: Default scales per scenario (full paper durations are 60/120/300/600 s).
SCENARIO_SCALES: Dict[int, float] = {
    1: bench_scale(1.0),
    2: bench_scale(1.0),
    3: bench_scale(0.4),
    4: bench_scale(0.2),
}

#: The tuned per-scenario defaults (before any REPRO_BENCH_SCALE
#: override) at which the Fig. 4-7 paper-shape assertions are known to
#: hold.
_PAPER_SHAPE_SCALES: Dict[int, float] = {1: 1.0, 2: 1.0, 3: 0.4, 4: 0.2}


def asserts_paper_shape(number: int) -> bool:
    """Whether the bench scale is large enough to assert paper shape.

    The memory-pressure and backlog dynamics behind Figs. 4-7 need
    enough simulated time to emerge; smoke-scale runs (CI's
    ``REPRO_BENCH_SCALE=0.05``) only regenerate the ``BENCH_*.json``
    numbers for the regression gate and skip the shape assertions.
    """
    return SCENARIO_SCALES[number] >= _PAPER_SHAPE_SCALES[number] - 1e-9


_CACHE: Dict[Tuple[int, float, str], SimulationResult] = {}
_SCENARIOS: Dict[Tuple[int, float], Scenario] = {}


def get_scenario(number: int, scale: Optional[float] = None) -> Scenario:
    """Build (and cache) Table II scenario ``number`` at bench scale."""
    if scale is None:
        scale = SCENARIO_SCALES[number]
    key = (number, scale)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = make_scenario(number, scale=scale)
    return _SCENARIOS[key]


def run_cached(number: int, scheduler: str, scale: Optional[float] = None) -> SimulationResult:
    """Run (or reuse) one scenario x scheduler simulation."""
    if scale is None:
        scale = SCENARIO_SCALES[number]
    key = (number, scale, scheduler)
    if key not in _CACHE:
        _CACHE[key] = run_simulation(get_scenario(number, scale), scheduler)
    return _CACHE[key]


def summaries_for(
    number: int, schedulers: List[str]
) -> List[SchedulerSummary]:
    """Summary rows for a set of schedulers on one scenario."""
    return [run_cached(number, s).summary() for s in schedulers]


def emit_report(name: str, text: str) -> Path:
    """Print a report and persist it under ``benchmarks/results``."""
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def emit_json(name: str, payload: dict) -> Path:
    """Persist machine-readable bench numbers as ``BENCH_<name>.json``.

    These files are what ``benchmarks/check_regressions.py`` diffs
    against the committed baselines in ``benchmarks/baselines/`` — every
    bench that reproduces a paper number should emit one.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def summary_payload(
    summaries: List[SchedulerSummary], *, scenario: int, scale: float
) -> dict:
    """BENCH json payload from comparison rows.

    Includes only simulator-deterministic quantities; wall-clock numbers
    (``sched_cost_us``) are reported in the text tables but excluded
    here so the regression gate never trips on machine speed.
    """
    return {
        "scenario": scenario,
        "scale": scale,
        "schedulers": {
            s.scheduler: {
                "interactive_fps": s.interactive_fps,
                "interactive_latency": s.interactive_latency,
                "interactive_p99": s.interactive_p99,
                "batch_latency": s.batch_latency,
                "batch_working_time": s.batch_working_time,
                "interactive_completed": s.interactive_completed,
                "batch_completed": s.batch_completed,
                "hit_rate": s.hit_rate,
            }
            for s in summaries
        },
    }

"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Simulation
runs are cached per (scenario, scale, scheduler) within a pytest
session so that Table III can reuse the Fig. 4-7 runs, and every report
is both printed (visible with ``pytest -s`` / in the benchmark summary)
and written to ``benchmarks/results/<name>.txt``.

Scales default to values that keep a full ``pytest benchmarks/
--benchmark-only`` run in the ~10-minute range; set the environment
variable ``REPRO_BENCH_SCALE=1.0`` to run every scenario at the paper's
full duration.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.metrics.analysis import SchedulerSummary
from repro.sim.simulator import SimulationResult, run_simulation
from repro.workload.scenarios import Scenario, make_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's figure order for scheduler comparisons.
from repro.core.registry import PAPER_SCHEDULERS as ALL_SCHEDULERS  # noqa: E402
#: The Table III column subset.
TABLE3_SCHEDULERS = ["FS", "FCFSU", "FCFSL", "OURS"]


def bench_scale(default: float) -> float:
    """Scenario scale for benches, overridable via REPRO_BENCH_SCALE."""
    env = os.environ.get("REPRO_BENCH_SCALE")
    return float(env) if env else default


#: Default scales per scenario (full paper durations are 60/120/300/600 s).
SCENARIO_SCALES: Dict[int, float] = {
    1: bench_scale(1.0),
    2: bench_scale(1.0),
    3: bench_scale(0.4),
    4: bench_scale(0.2),
}

_CACHE: Dict[Tuple[int, float, str], SimulationResult] = {}
_SCENARIOS: Dict[Tuple[int, float], Scenario] = {}


def get_scenario(number: int, scale: Optional[float] = None) -> Scenario:
    """Build (and cache) Table II scenario ``number`` at bench scale."""
    if scale is None:
        scale = SCENARIO_SCALES[number]
    key = (number, scale)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = make_scenario(number, scale=scale)
    return _SCENARIOS[key]


def run_cached(number: int, scheduler: str, scale: Optional[float] = None) -> SimulationResult:
    """Run (or reuse) one scenario x scheduler simulation."""
    if scale is None:
        scale = SCENARIO_SCALES[number]
    key = (number, scale, scheduler)
    if key not in _CACHE:
        _CACHE[key] = run_simulation(get_scenario(number, scale), scheduler)
    return _CACHE[key]


def summaries_for(
    number: int, schedulers: List[str]
) -> List[SchedulerSummary]:
    """Summary rows for a set of schedulers on one scenario."""
    return [run_cached(number, s).summary() for s in schedulers]


def emit_report(name: str, text: str) -> Path:
    """Print a report and persist it under ``benchmarks/results``."""
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path

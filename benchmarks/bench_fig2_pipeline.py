"""Fig. 2 — visualization pipeline stage breakdown.

The paper's Fig. 2 shows that before rendering can start, data must be
fetched from I/O (seconds) while ray casting and image compositing take
milliseconds each.  This bench reproduces the breakdown twice:

* from the **cost model** — the stage times a 512 MiB chunk pays on the
  8-node system (cold vs. warm), and
* from the **real software renderer** — wall-clock ray casting and
  compositing of a brick, confirming the model's render/composite
  ratio is grounded in an actual implementation.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import emit_report
from repro.cluster.costs import cost_preset_linux8
from repro.cluster.storage import StorageModel, StorageSpec
from repro.reporting.report import pipeline_breakdown
from repro.render.camera import default_camera_for
from repro.render.compositing import two_three_swap
from repro.render.datasets import supernova
from repro.render.raycast import integrate_brick, brick_depth
from repro.render.transfer_function import cool_warm
from repro.util.units import MiB


def test_fig2_cost_model_breakdown(benchmark):
    """Stage times of one 512 MiB task under the calibrated cost model."""
    cost = cost_preset_linux8()
    storage = StorageModel(StorageSpec(bandwidth=100 * MiB, latency=0.010))

    def compute():
        io = storage.estimate_load_time(512 * MiB)
        render = cost.render_time(512 * MiB, 4)
        composite = cost.composite_time(4)
        return io, render, composite

    io, render, composite = benchmark(compute)
    text = "\n".join(
        [
            "Fig. 2 (cost model): pipeline stages of one 512 MiB chunk task",
            "",
            "cold task (chunk not in node memory):",
            pipeline_breakdown(io, render, composite, title=""),
            "",
            "warm task (chunk cached in main memory — I/O omitted, Def. 1):",
            pipeline_breakdown(0.0, render, composite, title=""),
            "",
            f"paper shape: I/O is 'of the order of tens of seconds' per "
            f"dataset ({4 * io:.1f} s for all 4 chunks here), rendering and "
            f"compositing 'a few milliseconds' "
            f"({render * 1e3:.1f} / {composite * 1e3:.1f} ms).",
        ]
    )
    emit_report("fig2_pipeline_model", text)
    assert io > 100 * render  # I/O dominates by orders of magnitude


def test_fig2_real_renderer_raycast(benchmark):
    """Wall-clock ray casting of one brick with the NumPy renderer."""
    vol = supernova((48, 48, 48))
    cam = default_camera_for(vol.shape, width=128, height=128)
    tf = cool_warm()
    bricks = vol.split_for_ranks(4)

    image = benchmark(integrate_brick, bricks[0], cam, tf, step=0.7)
    assert image.shape == (128, 128, 4)


def test_fig2_real_renderer_composite(benchmark):
    """Wall-clock 2-3-swap compositing of four brick images."""
    vol = supernova((48, 48, 48))
    cam = default_camera_for(vol.shape, width=128, height=128)
    tf = cool_warm()
    bricks = vol.split_for_ranks(4)
    order = np.argsort([brick_depth(b, cam) for b in bricks])
    images = [integrate_brick(bricks[i], cam, tf, step=0.7) for i in order]

    result = benchmark(two_three_swap, images)
    assert result.image.shape == (128, 128, 4)

"""Fault storm — Scenario 1 under seeded faults, healed vs vanilla.

A seeded, reproducible fault storm (one crash+revival, one straggler,
one cache wipe, one storage-degradation window from
:meth:`~repro.faults.plan.FaultPlan.storm`) hits Scenario 1 three ways:
recovery-aware OURS (detection + self-healing), vanilla OURS (the same
faults, no detection — crashes fall back to the instantly-aware §VI-D
path), and vanilla FCFS.  The gate numbers are the honest
fault-tolerance score: jobs lost, detection count and latency, recovery
actions taken, the fps-SLO compliant fraction, and — for the healed run
— whether root-cause analysis localizes the injected faults from the
audit log and critical paths alone.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_json, emit_report
from repro.faults import FaultPlan, analyze, score
from repro.obs import AuditConfig
from repro.obs.slo import SLObjective, SLOMonitor
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

SCALE = bench_scale(0.5)
STORM_SEED = 11
#: RCA onset-grading tolerance: with multi-second reload I/O the onset
#: cannot be pinned finer than roughly one task duration.
RCA_TOLERANCE = 2.0
#: (scheduler, self-healing) rows, paper-comparison order.
MODES = [("OURS", True), ("OURS", False), ("FCFS", False)]


def _mode_name(scheduler: str, heal: bool) -> str:
    return f"{scheduler}:{'healed' if heal else 'vanilla'}"


@pytest.fixture(scope="module")
def results_cache():
    cache: dict = {}
    yield cache
    cache.clear()


def _run(scheduler: str, heal: bool, cache: dict):
    key = (scheduler, heal)
    if key not in cache:
        scenario = make_scenario(1, scale=SCALE)
        plan = FaultPlan.storm(
            STORM_SEED,
            node_count=scenario.system.node_count,
            duration=scenario.trace.duration,
            heal=heal,
        )
        result = run_simulation(
            scenario,
            scheduler,
            config=RunConfig(
                drain=True, audit=AuditConfig(capacity=None), faults=plan
            ),
        )
        cache[key] = (scenario, plan, result)
    return cache[key]


def _row(scenario, plan, result, *, with_rca: bool) -> dict:
    report = result.fault_report
    objective = SLObjective(kind="fps", target=scenario.target_framerate)
    slo = SLOMonitor([objective]).evaluate(result)[0]
    row = {
        "jobs_submitted": report.jobs_submitted,
        "jobs_completed": report.jobs_completed,
        "jobs_lost": report.jobs_lost,
        "detections": len(report.detections),
        "detection_latency_mean": report.detection_latency_mean,
        "detection_latency_max": report.detection_latency_max,
        "recovery_actions": len(report.actions),
        "tasks_requeued": report.tasks_requeued(),
        "action_counts": report.action_counts(),
        "compliant_fraction": slo.compliant_fraction,
    }
    if with_rca:
        rca = analyze(
            result.audit,
            result.critical_paths.paths,
            slo.violations,
            node_count=scenario.system.node_count,
        )
        grade = score(rca, plan, time_tolerance=RCA_TOLERANCE)
        row["rca"] = {
            "verdicts": len(rca.verdicts),
            "localized": grade["localized"],
            "recall": grade["recall"],
            "false_positives": grade["false_positives"],
        }
    return row


@pytest.mark.parametrize("scheduler,heal", MODES)
def test_faults_run(benchmark, scheduler, heal, results_cache):
    _, _, result = benchmark.pedantic(
        _run, args=(scheduler, heal, results_cache), rounds=1, iterations=1
    )
    assert result.fault_report is not None
    assert result.fault_report.events_injected == 4


def test_faults_report(benchmark, results_cache):
    def build():
        rows = {}
        for scheduler, heal in MODES:
            scenario, plan, result = _run(scheduler, heal, results_cache)
            rows[_mode_name(scheduler, heal)] = _row(
                scenario, plan, result, with_rca=heal
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    header = (
        f"{'mode':<14} {'lost':>5} {'det':>4} {'lat(ms)':>9} "
        f"{'actions':>8} {'compliant':>10} {'rca':>8}"
    )
    lines = [
        (
            f"Fault storm — Scenario 1 (scale {SCALE:g}), seeded storm "
            f"{STORM_SEED}: crash+revival, straggler, cache wipe, "
            f"storage window"
        ),
        header,
        "-" * len(header),
    ]
    for scheduler, heal in MODES:
        name = _mode_name(scheduler, heal)
        row = rows[name]
        rca = row.get("rca")
        rca_text = (
            f"{rca['localized']}/4" if rca is not None else "-"
        )
        lines.append(
            f"{name:<14} {row['jobs_lost']:>5} {row['detections']:>4} "
            f"{row['detection_latency_mean'] * 1e3:>9.1f} "
            f"{row['recovery_actions']:>8} "
            f"{row['compliant_fraction'] * 100:>9.2f}% {rca_text:>8}"
        )
    lines.append(
        "shape: self-healing OURS loses no jobs without any oracle, "
        "detects every node-scoped fault, localizes the storm via RCA, "
        "and stays ahead of FCFS.  The OURS:vanilla row is an upper "
        "bound, not a fair baseline: its legacy crash path is instantly "
        "aware (no heartbeat needed), and the paper's completion-time "
        "corrections (SV-B) already absorb stragglers and wipes — the "
        "estimate feedback reroutes around slow nodes and the stale "
        "mirror preserves reload affinity."
    )
    emit_report("faults", "\n".join(lines))
    emit_json(
        "faults",
        {
            "scenario": 1,
            "scale": SCALE,
            "storm_seed": STORM_SEED,
            "rca_tolerance": RCA_TOLERANCE,
            "modes": rows,
        },
    )

    healed = rows[_mode_name("OURS", True)]
    # Conservation holds at every scale: self-healing re-places every
    # stranded task, so no submitted job is lost.
    assert healed["jobs_lost"] == 0

    if SCALE < 0.5 - 1e-9:
        return  # smoke scale: numbers regenerated, shape not asserted
    fcfs = rows[_mode_name("FCFS", False)]
    # The detectors caught the node-scoped faults (crash, straggler,
    # wipe; the bounded storage window has no per-node signature).
    assert healed["detections"] >= 3
    assert healed["recovery_actions"] >= 3
    # Healing beats a scheduler with no cache awareness and no healing.
    assert healed["compliant_fraction"] >= fcfs["compliant_fraction"]
    # RCA localizes at least the crash and the straggler from the audit
    # log and critical paths alone, with no spurious verdict kinds.
    assert healed["rca"]["localized"] >= 2

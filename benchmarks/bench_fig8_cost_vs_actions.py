"""Fig. 8 — scheduling cost versus the number of simultaneous actions.

The paper runs 32 ANL nodes with 16 datasets (4 GB each) and sweeps the
number of simultaneous user actions.  The FCFS-family schedules one job
at a time (per-job cost independent of the action count but linear in
cluster size); OURS and FS run on a constant cycle and amortize the
per-cycle work across all jobs of the cycle, so their per-job cost
*drops* as more simultaneous actions arrive — the paper's "can more
efficiently process incoming jobs as more simultaneous user actions are
taking place".
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.core.chunks import dataset_suite
from repro.reporting.report import sweep_table
from repro.sim.config import system_anl
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.scenarios import Scenario

ACTION_COUNTS = [8, 16, 32, 64, 128]
SCHEDULERS = ["OURS", "FCFSL", "FCFSU"]
DURATION = 10.0 * bench_scale(1.0)

_RESULTS: dict = {}


def fig8_scenario(actions: int) -> Scenario:
    """32 ANL nodes, 16 x 4 GB datasets, ``actions`` persistent actions."""
    system = system_anl(node_count=32)
    datasets = dataset_suite(16, 4 * GiB)
    # Action i explores dataset i mod 16 (several users per dataset at
    # high action counts, as in a busy shared service).
    trace = persistent_actions(
        datasets,
        DURATION,
        actions=actions,
        target_framerate=100.0 / 3.0,
        seed=42,
        name="fig8",
    )
    return Scenario(name=f"fig8-a{actions}", system=system, trace=trace)


def _run(actions: int, scheduler: str):
    key = (actions, scheduler)
    if key not in _RESULTS:
        _RESULTS[key] = run_simulation(fig8_scenario(actions), scheduler)
    return _RESULTS[key]


@pytest.mark.parametrize("actions", ACTION_COUNTS)
def test_fig8_point(benchmark, actions):
    def run_point():
        return {s: _run(actions, s) for s in SCHEDULERS}

    results = benchmark.pedantic(run_point, rounds=1, iterations=1)
    for r in results.values():
        assert r.jobs_completed > 0


def test_fig8_report(benchmark):
    def build():
        return {
            s: [_run(a, s).sched_cost_us for a in ACTION_COUNTS]
            for s in SCHEDULERS
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "# user actions",
        ACTION_COUNTS,
        series,
        title=(
            "Fig. 8 — per-job scheduling cost (us) vs simultaneous user "
            "actions (32 ANL nodes, 16x4GB datasets)"
        ),
    )
    text += (
        "\npaper shape: OURS amortizes its constant-cycle scheduling "
        "across all jobs of a cycle, so its per-job cost falls (or stays "
        "flat) with more actions, while per-job FCFS-family costs do not."
    )
    emit_report("fig8_cost_vs_actions", text)

    ours = series["OURS"]
    fcfsu = series["FCFSU"]
    # OURS per-job cost stays roughly flat across a 16x action increase
    # (amortized scheduling); allow generous wall-clock noise headroom.
    assert ours[-1] <= 1.6 * ours[0]
    # FCFSU (whole-cluster jobs) is the most expensive policy per job at
    # every point of the sweep.
    for i in range(len(ACTION_COUNTS)):
        assert ours[i] < fcfsu[i]

"""Streaming overhead + online-anomaly regression leaves.

The telemetry stream must be a pure observer: streamed runs stay
bit-identical to unstreamed ones and cost at most 10 % of wall clock.
This bench measures the event-processing rate with and without a
stream attached (interleaved, best of N, CPU-time rates like
``bench_tracer_overhead.py``), asserts the identity and the bound, and
then pins the *deterministic* anomaly-detection leaves: the seeded
fault storm localized online at >= 3/4 with zero false positives, and
a fault-free run raising no alarm at all.  Everything lands in
``benchmarks/results/BENCH_stream.json`` for the regression gate.

The anomaly section runs at a fixed storm scale (0.1) regardless of
``REPRO_BENCH_SCALE``: below that the first crash collapses the whole
cluster before the wipe/storage events land and there is physically no
signal window to detect.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from benchmarks._shared import bench_scale, emit_json, emit_report
from repro.faults import FaultPlan
from repro.obs.anomaly import score_anomalies
from repro.obs.stream import StreamConfig
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1

# Overhead ratios need enough events to be signal rather than timing
# noise, so smoke-scale overrides (CI's REPRO_BENCH_SCALE=0.05) are
# floored; larger overrides still apply.
SCALE = max(bench_scale(0.25), 0.25)
ROUNDS = 5

#: Fixed scale for the anomaly leaves — the smallest at which every
#: storm fault has a signal window (see module docstring).
STORM_SCALE = 0.1
STORM_SEED = 11


def _measure_once(tmp_dir, streamed: bool) -> Dict[str, float]:
    """Events/sec (CPU time) for one streamed or unstreamed run."""
    scenario = scenario_1(scale=SCALE)
    stream: Optional[StreamConfig] = None
    if streamed:
        stream = StreamConfig(path=tmp_dir / "overhead.ndjson")
    cpu_start = time.process_time()
    start = time.perf_counter()
    result = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(stream=stream, record_assignments=True),
    )
    wall = time.perf_counter() - start
    cpu = time.process_time() - cpu_start
    sample = {
        "events": float(result.events_processed),
        "wall_s": wall,
        # CPU-time rates: the ratio below compares one config against
        # the other, and CPU time is immune to co-tenant load stealing
        # cycles mid-block (wall_s stays for the human report only).
        "cpu_s": cpu,
        "events_per_sec": result.events_processed / cpu,
        "trace_hash": result.assignment_trace_hash(),
    }
    if streamed:
        sample["snapshots"] = float(result.stream.snapshots)
        sample["anomaly_count"] = float(len(result.stream.anomalies))
    return sample


def test_stream_overhead(benchmark, tmp_path):
    """Measure streaming cost, pin identity and the anomaly leaves."""

    def run_all():
        # Interleave the two configs round-robin (best of N each) so
        # machine-load drift hits both roughly equally instead of
        # skewing whichever block ran last.
        best: Dict[str, Dict[str, float]] = {}
        for _ in range(ROUNDS):
            for name, streamed in (("unstreamed", False), ("streamed", True)):
                sample = _measure_once(tmp_path, streamed)
                if (
                    name not in best
                    or sample["events_per_sec"]
                    > best[name]["events_per_sec"]
                ):
                    best[name] = sample
        return best

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = (
        rates["streamed"]["events_per_sec"]
        / rates["unstreamed"]["events_per_sec"]
    )
    bit_identical = (
        rates["streamed"]["trace_hash"] == rates["unstreamed"]["trace_hash"]
    )

    # --- deterministic anomaly leaves (fixed storm scale) -------------
    scenario = scenario_1(scale=STORM_SCALE)
    plan = FaultPlan.storm(
        STORM_SEED,
        node_count=scenario.system.node_count,
        duration=scenario.trace.duration,
        heal=True,
    )
    storm = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            drain=True,
            faults=plan,
            stream=StreamConfig(path=tmp_path / "storm.ndjson"),
        ),
    )
    grade = score_anomalies(storm.stream.anomalies, plan)

    quiet = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(stream=StreamConfig(path=tmp_path / "quiet.ndjson")),
    )

    payload = {
        "bench": "stream_overhead",
        "scenario": "scenario1",
        "scale": SCALE,
        "scheduler": "OURS",
        "rounds": ROUNDS,
        "results": {
            name: {k: v for k, v in r.items() if k != "trace_hash"}
            for name, r in rates.items()
        },
        # Wall-clock derived: never gated (SKIP_KEYS); the hard bound
        # is the assert below.
        "streamed_relative_rate": ratio,
        "bit_identical": bit_identical,
        "storm": {
            "storm_scale": STORM_SCALE,
            "seed": STORM_SEED,
            "total": grade["total"],
            "localized": grade["localized"],
            "false_positives": grade["false_positives"],
            "recall": grade["recall"],
            "anomaly_count": float(len(storm.stream.anomalies)),
        },
        "quiet": {
            "snapshots": float(quiet.stream.snapshots),
            "anomaly_count": float(len(quiet.stream.anomalies)),
        },
    }
    out = emit_json("stream", payload)

    lines = [
        f"stream overhead — scenario 1, OURS, best of {ROUNDS} "
        f"(scale {SCALE})",
        "",
    ]
    for name, r in rates.items():
        lines.append(
            f"{name:>10}: {r['events_per_sec']:>12,.0f} events/s "
            f"({r['events']:,.0f} events, {r['wall_s'] * 1e3:.1f} ms)"
        )
    lines.append("")
    lines.append(f"streamed relative rate: {ratio:.3f} (bound: >= 0.90)")
    lines.append(f"bit-identical with streaming: {bit_identical}")
    lines.append(
        f"storm (scale {STORM_SCALE}, seed {STORM_SEED}): "
        f"{grade['localized']}/{grade['total']} faults localized online, "
        f"{grade['false_positives']} false positives"
    )
    lines.append(
        f"fault-free: {len(quiet.stream.anomalies)} anomalies over "
        f"{quiet.stream.snapshots} snapshots"
    )
    lines.append(f"machine-readable: {out}")
    emit_report("stream_overhead", "\n".join(lines))

    # The acceptance bars, asserted here rather than gated: streaming
    # costs at most 10% of the event rate, never perturbs the run, and
    # the online detectors localize the storm with zero false alarms.
    assert ratio >= 0.90
    assert bit_identical
    assert rates["streamed"]["snapshots"] > 0
    assert grade["total"] == 4
    assert grade["localized"] >= 3
    assert grade["false_positives"] == 0
    assert len(quiet.stream.anomalies) == 0

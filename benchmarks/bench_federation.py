"""Federation — locality routing vs consistent hashing, shard scaling.

The federation tier exists for one reason: a user routed to the shard
that homes their dominant dataset hits a warm Cache table; a user
hashed onto an arbitrary shard faults their working set in cold.  This
bench runs Scenario 2 with a ``users=shards`` population multiplier
(each shard sees about one Table II load after routing) under both
routers and pins:

* the fleet cache hit rate, delivered fps, and latency per router,
* the locality-minus-hash hit-rate delta (the tier's headline number),
* shard-count scaling rows (2 -> 4 shards under locality routing), and
* the deterministic placement counters — users per shard and replica
  bytes — which must be bit-stable across machines (routing and
  replication are pure md5/LPT functions of the trace).

All runs are serial (``workers=1``); pool parity is pinned by the
tier-1 tests, so burning CI wall-clock on processes here buys nothing.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_json, emit_report
from repro.federation import FederationConfig, run_federation
from repro.workload.scenarios import make_scenario

SCALE = bench_scale(0.5)
SCHEDULER = "OURS"

#: (label, shards, router) — the comparison grid.  Two shards for the
#: router A/B, four for the scaling row.
POINTS = [
    ("hash-2", 2, "hash"),
    ("locality-2", 2, "locality"),
    ("locality-4", 4, "locality"),
]

_RESULTS: dict = {}


def _run(label: str):
    if label not in _RESULTS:
        (_, shards, router) = next(p for p in POINTS if p[0] == label)
        scenario = make_scenario(2, scale=SCALE, users=shards)
        _RESULTS[label] = run_federation(
            scenario,
            SCHEDULER,
            FederationConfig(shards=shards, router=router),
        )
    return _RESULTS[label]


def _row(result) -> dict:
    summary = result.summary()
    return {
        "shards": result.shards,
        "router": result.routing.policy,
        "replication": result.plan.policy,
        "hit_rate": result.hit_rate,
        "interactive_fps": summary.interactive_fps,
        "interactive_latency": summary.interactive_latency,
        "jobs_submitted": result.jobs_submitted,
        "jobs_completed": result.jobs_completed,
        # Deterministic placement counters: pure functions of the
        # trace, identical on every machine.
        "users_per_shard": result.routing.counts(),
        "replica_bytes": result.plan.replica_bytes(
            make_scenario(2, scale=SCALE, users=result.shards).trace
        ),
    }


@pytest.mark.parametrize("label", [p[0] for p in POINTS])
def test_federation_run(benchmark, label):
    result = benchmark.pedantic(_run, args=(label,), rounds=1, iterations=1)
    assert result.jobs_submitted > 0


def test_federation_report(benchmark):
    def build():
        return {label: _row(_run(label)) for label, _, _ in POINTS}

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    delta = rows["locality-2"]["hit_rate"] - rows["hash-2"]["hit_rate"]

    header = (
        f"{'point':<12} {'hit rate':>9} {'fps':>8} {'lat(ms)':>8} "
        f"{'done/sub':>11} {'users/shard':>14}"
    )
    lines = [
        (
            f"Federation — Scenario 2, users=shards, scale {SCALE:g}: "
            f"consistent-hash vs locality routing"
        ),
        header,
        "-" * len(header),
    ]
    for label, _, _ in POINTS:
        row = rows[label]
        lines.append(
            f"{label:<12} {row['hit_rate'] * 100:>8.2f}% "
            f"{row['interactive_fps']:>8.2f} "
            f"{row['interactive_latency'] * 1000:>8.1f} "
            f"{row['jobs_completed']:>5}/{row['jobs_submitted']:<5} "
            f"{'/'.join(str(c) for c in row['users_per_shard']):>14}"
        )
    lines.append(
        f"locality-minus-hash hit-rate delta: {delta * 100:+.2f} pts — "
        "routing users to their data's home shard keeps each Cache "
        "table warm; hashing scatters working sets across shards."
    )
    emit_report("federation", "\n".join(lines))
    emit_json(
        "federation",
        {
            "scenario": 2,
            "scale": SCALE,
            "scheduler": SCHEDULER,
            "points": rows,
            "locality_vs_hash_hit_delta": delta,
        },
    )

    # Placement is deterministic at every scale: routing and
    # replication are pure functions of the trace.
    assert sum(rows["hash-2"]["users_per_shard"]) == sum(
        rows["locality-2"]["users_per_shard"]
    )
    if SCALE < 0.5 - 1e-9:
        return  # smoke scale: numbers regenerated, shape not asserted
    # The tier's reason to exist: locality routing wins on cache reuse
    # and never loses on latency.
    assert delta >= 0.0
    assert (
        rows["locality-2"]["interactive_latency"]
        <= rows["hash-2"]["interactive_latency"]
    )
    # Scaling out under locality keeps the fleet hit rate high: each
    # added shard homes its own partition of the suite.
    assert rows["locality-4"]["hit_rate"] >= rows["locality-2"]["hit_rate"] - 0.02

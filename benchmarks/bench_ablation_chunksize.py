"""Ablation — maximal chunk size Chkmax (paper §III-C).

The paper argues Chkmax must not exceed graphics memory and "should not
be too small either because a small chunk size results in more chunks
and transmission overheads"; a moderate size slightly below the
graphics memory gave satisfactory performance.  This sweep runs
Scenario 1 under OURS with Chkmax from 64 MiB to 1 GiB and reports the
framerate/latency trade-off: tiny chunks multiply per-task overheads
(more tasks per job, deeper compositing), oversized chunks reduce
placement freedom.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.reporting.report import sweep_table
from repro.sim.simulator import run_simulation
from repro.util.units import GiB, MiB
from repro.workload.scenarios import scenario_1

CHUNK_SIZES_MIB = [64, 128, 256, 512, 1024]
SCALE = bench_scale(0.5)

_RESULTS: dict = {}


def _run(chunk_mib: int):
    if chunk_mib not in _RESULTS:
        sc = scenario_1(scale=SCALE)
        sc = replace(
            sc, system=sc.system.with_overrides(chunk_max=chunk_mib * MiB)
        )
        _RESULTS[chunk_mib] = run_simulation(sc, "OURS")
    return _RESULTS[chunk_mib]


@pytest.mark.parametrize("chunk_mib", CHUNK_SIZES_MIB)
def test_ablation_chunk_point(benchmark, chunk_mib):
    result = benchmark.pedantic(_run, args=(chunk_mib,), rounds=1, iterations=1)
    assert result.jobs_completed > 0


def test_ablation_chunk_report(benchmark):
    def build():
        return {
            "fps": [_run(c).interactive_fps for c in CHUNK_SIZES_MIB],
            "latency (s)": [
                _run(c).interactive_latency.mean for c in CHUNK_SIZES_MIB
            ],
            "tasks/job": [
                float(2 * GiB // (c * MiB)) for c in CHUNK_SIZES_MIB
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = sweep_table(
        "Chkmax (MiB)",
        CHUNK_SIZES_MIB,
        series,
        title=(
            "Ablation — Chkmax sweep, Scenario 1 under OURS (2 GiB "
            "datasets, 8 nodes)"
        ),
        fmt="{:>12.2f}",
    )
    text += (
        "\npaper shape (§III-C): small chunks multiply per-task overheads "
        "and sink the framerate; a moderate size slightly below the 1 GiB "
        "graphics memory performs best."
    )
    emit_report("ablation_chunksize", text)

    fps = dict(zip(CHUNK_SIZES_MIB, series["fps"]))
    # 64 MiB chunks (32 tasks/job) carry clearly more overhead than 512.
    assert fps[64] < fps[512]
    # The paper's choice (512 MiB) reaches the target.
    assert fps[512] > 0.9 * (100.0 / 3.0)

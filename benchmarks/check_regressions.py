#!/usr/bin/env python3
"""Benchmark regression gate: diff fresh BENCH_*.json against baselines.

Every figure/table bench emits a machine-readable
``benchmarks/results/BENCH_<name>.json``; this script compares each of
them against the committed counterpart in ``benchmarks/baselines/``
using per-metric relative tolerances and exits nonzero when any number
drifted beyond its budget.  It runs in CI after the smoke-scale bench
pass, so scheduler changes that silently degrade a paper number fail
the build instead of landing.

Rules:

* Metrics are matched leaf-by-leaf (dotted paths into the JSON).
* Wall-clock quantities (``wall_s``, ``cpu_s``, ``events_per_sec``,
  ``sched_cost_us``, trace-event counts, rounds) are machine-dependent
  and are never compared.
* Relative-rate ratios from the overhead bench get loose tolerances —
  they bound overhead, they do not reproduce paper numbers.
* A results file whose ``scale`` differs from the baseline's is skipped
  with a warning: numbers at different scenario scales are not
  comparable.
* Baselines without a fresh result (bench not run) are skipped with a
  warning; fresh results without a baseline are reported as new.
* Within a compared file, a baseline leaf *missing* from the fresh
  results is a regression, not a warning — a bench silently dropping a
  metric would otherwise pass the gate forever (silent drift).
* ``--update`` also prunes baseline files with no fresh counterpart
  (printed as removals).  Run the full bench suite first, or stale
  baselines for benches you did not run will be deleted.

Usage::

    python benchmarks/check_regressions.py               # gate CI
    python benchmarks/check_regressions.py --update      # refresh baselines

Exit codes: 0 ok, 1 regression detected, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

BENCH_DIR = Path(__file__).parent
DEFAULT_RESULTS = BENCH_DIR / "results"
DEFAULT_BASELINES = BENCH_DIR / "baselines"

#: Leaf keys that are machine-dependent (wall clock, host speed) and
#: must never gate a build.  The overhead *ratios* are wall-clock
#: derived too — their hard bounds live as asserts inside
#: ``bench_tracer_overhead.py``, not here.
SKIP_KEYS = {
    "wall_s",
    "cpu_s",
    "events",
    "events_per_sec",
    "trace_events",
    "sched_cost_us",
    "cost_us",
    "rounds",
    "null_tracer_relative_rate",
    "full_tracer_relative_rate",
    "metrics_registry_relative_rate",
    "audit_relative_rate",
    "streamed_relative_rate",
    # Per-stage wall clocks from bench_report_overhead — their hard
    # bound lives as an assert inside the bench itself.
    "simulate_wall_s",
    "extract_wall_s",
    "render_svg_wall_s",
    "render_html_wall_s",
}

#: (relative tolerance, absolute floor) per leaf key.  The absolute
#: floor absorbs near-zero baselines where a relative check is
#: meaningless (e.g. a 1 ms latency moving to 2 ms).
DEFAULT_TOLERANCE = (0.05, 1e-9)
TOLERANCES: Dict[str, Tuple[float, float]] = {
    # Simulator-deterministic paper numbers: tight.
    "interactive_fps": (0.02, 0.05),
    "interactive_latency": (0.05, 0.005),
    "interactive_p99": (0.10, 0.01),
    "batch_latency": (0.05, 0.01),
    "batch_working_time": (0.05, 0.01),
    "interactive_completed": (0.02, 1.0),
    "batch_completed": (0.05, 1.0),
    "hit_rate": (0.01, 0.002),
    # Fault-storm numbers (bench_faults): virtual-time deterministic.
    # Jobs lost and RCA outcomes are hard guarantees — zero drift.
    "jobs_lost": (0.0, 0.0),
    "detections": (0.0, 0.0),
    "recovery_actions": (0.0, 0.0),
    "detection_latency_mean": (0.05, 0.01),
    "detection_latency_max": (0.05, 0.01),
    "tasks_requeued": (0.05, 1.0),
    "compliant_fraction": (0.05, 0.02),
    "localized": (0.0, 0.0),
    "recall": (0.0, 1e-9),
    "false_positives": (0.0, 0.0),
    "verdicts": (0.0, 0.0),
    # Stream leaves (bench_stream_overhead): snapshot grid and anomaly
    # stream are virtual-time deterministic — zero drift.
    "snapshots": (0.0, 0.0),
    "anomaly_count": (0.0, 0.0),
    # Report content pins (bench_report_overhead): the trace and the
    # renderer are virtual-time deterministic, so the model's counts
    # and the rendered byte sizes must not move at all.
    "segments": (0.0, 0.0),
    "residency_spans": (0.0, 0.0),
    "datasets": (0.0, 0.0),
    "markers": (0.0, 0.0),
    "paths": (0.0, 0.0),
    "svg_bytes": (0.0, 0.0),
    "html_bytes": (0.0, 0.0),
}


def iter_leaves(node, path: str = "") -> Iterator[Tuple[str, object]]:
    """Yield (dotted path, value) for every scalar leaf of a JSON tree."""
    if isinstance(node, dict):
        for key in sorted(node):
            child = f"{path}.{key}" if path else str(key)
            yield from iter_leaves(node[key], child)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            yield from iter_leaves(item, f"{path}[{index}]")
    else:
        yield path, node


def leaf_key(path: str) -> str:
    """Last dotted component of a leaf path (the metric name)."""
    return path.rsplit(".", 1)[-1]


def compare_file(
    name: str, baseline: dict, fresh: dict
) -> Tuple[List[str], List[str]]:
    """Compare one BENCH file; returns (regressions, warnings)."""
    regressions: List[str] = []
    warnings: List[str] = []

    base_scale = baseline.get("scale")
    fresh_scale = fresh.get("scale")
    if base_scale is not None and fresh_scale is not None:
        if not math.isclose(float(base_scale), float(fresh_scale), rel_tol=1e-9):
            warnings.append(
                f"{name}: scale mismatch (baseline {base_scale}, fresh "
                f"{fresh_scale}) — skipping; regenerate the baseline at "
                "the CI scale or set REPRO_BENCH_SCALE to match"
            )
            return regressions, warnings

    base_leaves = dict(iter_leaves(baseline))
    fresh_leaves = dict(iter_leaves(fresh))
    for path, base_value in base_leaves.items():
        key = leaf_key(path)
        if key in SKIP_KEYS or key == "scale" or key.startswith("scales"):
            continue
        if path not in fresh_leaves:
            # A dropped metric is silent drift: the bench stopped
            # reporting a number the baseline pins.  Gate it.
            regressions.append(
                f"{name}: {path} missing from fresh results (baseline "
                f"{base_value!r}); if intentional, refresh with --update"
            )
            continue
        fresh_value = fresh_leaves[path]
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            if base_value != fresh_value:
                warnings.append(
                    f"{name}: {path} changed: {base_value!r} -> {fresh_value!r}"
                )
            continue
        rtol, atol = TOLERANCES.get(key, DEFAULT_TOLERANCE)
        delta = abs(float(fresh_value) - float(base_value))
        budget = max(rtol * abs(float(base_value)), atol)
        if delta > budget:
            drift = (
                delta / abs(float(base_value)) * 100.0
                if base_value
                else float("inf")
            )
            regressions.append(
                f"{name}: {path} = {fresh_value:.6g} vs baseline "
                f"{base_value:.6g} ({drift:.1f}% drift, budget "
                f"rtol={rtol:.0%} atol={atol:g})"
            )
    for path in fresh_leaves:
        if path not in base_leaves and leaf_key(path) not in SKIP_KEYS:
            warnings.append(f"{name}: new metric {path} (not in baseline)")
    return regressions, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        help="directory with fresh BENCH_*.json (default benchmarks/results)",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=DEFAULT_BASELINES,
        help="directory with committed baselines (default benchmarks/baselines)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help=(
            "copy fresh results over the baselines instead of comparing, "
            "and prune baselines with no fresh counterpart (run the full "
            "bench suite first)"
        ),
    )
    args = parser.parse_args(argv)

    if not args.baselines.is_dir():
        print(f"baseline directory not found: {args.baselines}", file=sys.stderr)
        return 2

    if args.update:
        if not args.results.is_dir():
            print(f"results directory not found: {args.results}", file=sys.stderr)
            return 2
        updated = 0
        fresh_names = set()
        for fresh_path in sorted(args.results.glob("BENCH_*.json")):
            fresh_names.add(fresh_path.name)
            shutil.copy(fresh_path, args.baselines / fresh_path.name)
            print(f"updated {args.baselines / fresh_path.name}")
            updated += 1
        if not updated:
            print(f"no BENCH_*.json under {args.results}", file=sys.stderr)
            return 2
        # Prune stale baselines: a baseline whose bench no longer emits
        # results would otherwise warn ("bench not run") forever.
        for baseline_path in sorted(args.baselines.glob("BENCH_*.json")):
            if baseline_path.name not in fresh_names:
                baseline_path.unlink()
                print(f"removed stale baseline {baseline_path}")
        return 0

    baseline_paths = sorted(args.baselines.glob("BENCH_*.json"))
    if not baseline_paths:
        print(f"no BENCH_*.json baselines under {args.baselines}", file=sys.stderr)
        return 2

    all_regressions: List[str] = []
    all_warnings: List[str] = []
    compared = 0
    for baseline_path in baseline_paths:
        name = baseline_path.name
        fresh_path = args.results / name
        if not fresh_path.is_file():
            all_warnings.append(f"{name}: no fresh results (bench not run)")
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            fresh = json.loads(fresh_path.read_text())
        except json.JSONDecodeError as exc:
            print(f"{name}: invalid JSON: {exc}", file=sys.stderr)
            return 2
        regressions, warnings = compare_file(name, baseline, fresh)
        if not any("scale mismatch" in w for w in warnings):
            compared += 1
        all_regressions.extend(regressions)
        all_warnings.extend(warnings)

    for warning in all_warnings:
        print(f"warning: {warning}")
    if all_regressions:
        print()
        print(f"{len(all_regressions)} regression(s) vs baselines:")
        for regression in all_regressions:
            print(f"  REGRESSION {regression}")
        return 1
    print(
        f"ok: {compared}/{len(baseline_paths)} baseline file(s) compared, "
        "no regressions"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

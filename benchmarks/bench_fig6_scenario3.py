"""Fig. 6 — Scenario 3: light-load hybrid on 64 ANL nodes.

32 x 8 GB datasets (256 GB, fully cacheable in the 512 GB aggregate).
Paper result: OURS reaches an almost-optimum 32.80 fps with < 1 s
interactive latency by deferring batch jobs; FCFSL is close on
framerate but has notably better batch behaviour (it schedules batch
immediately); FCFSU collapses to 11.25 fps because every job occupies
all 64 nodes.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import (
    ALL_SCHEDULERS,
    SCENARIO_SCALES,
    asserts_paper_shape,
    emit_json,
    emit_report,
    run_cached,
    summaries_for,
    summary_payload,
)
from repro.reporting.report import comparison_table

SCENARIO = 3


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
def test_fig6_run(benchmark, scheduler):
    result = benchmark.pedantic(
        run_cached, args=(SCENARIO, scheduler), rounds=1, iterations=1
    )
    assert result.jobs_completed > 0


def test_fig6_report(benchmark):
    summaries = benchmark.pedantic(
        summaries_for, args=(SCENARIO, ALL_SCHEDULERS), rounds=1, iterations=1
    )
    by_name = {s.scheduler: s for s in summaries}
    text = comparison_table(
        summaries,
        title=(
            "Fig. 6 — Scenario 3 (64 ANL nodes, 32x8GB datasets, light "
            "hybrid load)"
        ),
        target_fps=100.0 / 3.0,
    )
    text += (
        "\npaper shape: OURS ~32.8 fps (near target) with the lowest "
        "interactive latency; FCFSU ~11.25 fps; FCFSL better on batch."
    )
    emit_report("fig6_scenario3", text)
    emit_json(
        "fig6",
        summary_payload(
            summaries, scenario=SCENARIO, scale=SCENARIO_SCALES[SCENARIO]
        ),
    )

    if not asserts_paper_shape(SCENARIO):
        return  # smoke scale: numbers regenerated, shape not asserted
    target = 100.0 / 3.0
    assert by_name["OURS"].interactive_fps > 0.8 * target
    assert by_name["OURS"].interactive_fps >= by_name["FCFSL"].interactive_fps
    assert 0.25 * target < by_name["FCFSU"].interactive_fps < 0.45 * target
    assert (
        by_name["OURS"].interactive_latency
        <= by_name["FCFSL"].interactive_latency + 1e-9
    )
    # Batch completes under both locality-aware schemes.  (The paper's
    # "FCFSL notably better on batch" ordering is seed-sensitive in the
    # reproduction and is therefore reported, not asserted — see
    # EXPERIMENTS.md.)
    assert by_name["FCFSL"].batch_completed > 0
    assert by_name["OURS"].batch_completed > 0

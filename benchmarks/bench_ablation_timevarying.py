"""Ablation — time-varying batch playback (paper §I's second batch use).

Batch jobs visualize "time-varying data": every frame renders a
*different* timestep dataset, so batch traffic gets no cache reuse at
all — the hardest case for the memory hierarchy, where deferral (not
locality) is the only defense for the interactive streams.  This bench
mixes four persistent interactive actions with time-varying playback
submissions over an 8-timestep series on the 8-node system and compares
OURS, FCFSL, and FCFS.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import bench_scale, emit_report
from repro.core.chunks import dataset_suite
from repro.reporting.report import comparison_table
from repro.sim.config import system_linux8
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.batch import time_varying_batch_stream
from repro.workload.scenarios import Scenario
from repro.workload.trace import merge_traces

DURATION = 40.0 * bench_scale(1.0)
SCHEDULERS = ["OURS", "FCFSL", "FCFS"]

_RESULTS: dict = {}
_SCENARIO = None


def tv_scenario() -> Scenario:
    global _SCENARIO
    if _SCENARIO is None:
        hot = dataset_suite(4, 2 * GiB)  # interactive working set: 8 GB
        series = dataset_suite(8, 2 * GiB, prefix="ts")  # timesteps: 16 GB
        interactive = persistent_actions(
            hot, DURATION, target_framerate=100.0 / 3.0, seed=21, name="tv-i"
        )
        batch = time_varying_batch_stream(
            series,
            DURATION,
            submission_rate=0.25,
            frames_per_submission=16,  # two loops over the series
            seed=22,
        )
        _SCENARIO = Scenario(
            name="time-varying",
            system=system_linux8(),
            trace=merge_traces([interactive, batch], name="time-varying"),
        )
    return _SCENARIO


def _run(name: str):
    if name not in _RESULTS:
        _RESULTS[name] = run_simulation(tv_scenario(), name)
    return _RESULTS[name]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_timevarying_run(benchmark, scheduler):
    result = benchmark.pedantic(_run, args=(scheduler,), rounds=1, iterations=1)
    assert result.jobs_submitted > 0


def test_timevarying_report(benchmark):
    summaries = benchmark.pedantic(
        lambda: [_run(s).summary() for s in SCHEDULERS], rounds=1, iterations=1
    )
    by_name = {s.scheduler: s for s in summaries}
    text = comparison_table(
        summaries,
        title=(
            "Ablation — time-varying batch playback vs interactive "
            "exploration (8 nodes; batch gets zero cache reuse)"
        ),
        target_fps=100.0 / 3.0,
    )
    text += (
        "\nshape: with every batch frame on a different timestep, batch "
        "locality cannot exist; only OURS's deferral heuristics protect "
        "the interactive streams from the playback's I/O churn."
    )
    emit_report("ablation_timevarying", text)

    target = 100.0 / 3.0
    assert by_name["OURS"].interactive_fps > 0.7 * target
    assert by_name["OURS"].interactive_fps > by_name["FCFSL"].interactive_fps
    assert by_name["FCFS"].interactive_fps < 0.2 * target
